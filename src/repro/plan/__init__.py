"""repro.plan — the typed plan IR and pluggable search backends.

This package is the single source of truth for what a partitioning *plan*
is.  AccPar's output (Section 5.1, Eq. 9) is a per-layer partition type and
ratio, plus the fork/join alignment decisions of Section 5.2; here those are
first-class typed entries instead of a stringly-keyed dict:

* :class:`LayerAssignment` — one weighted layer's type and ratio α;
* :class:`JoinAlignment` — the partition state chosen for a fork/join
  boundary tensor;
* :class:`PathExit` — the pre-alignment exit state of one path of a
  fork/join region (so the simulator replays exactly the re-alignments the
  search costed).

:class:`LevelPlan` holds one hierarchy level's ordered entries with typed
lookup helpers; :class:`HierarchicalPlan` is the per-pairing-tree-node plan;
:class:`SearchResult` is what every search backend returns.

Search algorithms plug in behind the :class:`SearchBackend` protocol and the
:func:`get_backend` registry (``dp`` / ``greedy`` / ``brute-force`` /
``fixed-type``), selectable by name from the CLI (``--backend``) and
per-request in the plan service.

:mod:`repro.plan.validate` checks a plan against a network's structure and
:mod:`repro.plan.diff` computes structural differences between two plans.
"""

from .ir import (
    HierarchicalPlan,
    JoinAlignment,
    LayerAssignment,
    LayerPartition,
    LevelPlan,
    PathExit,
    PlanEntry,
    SearchResult,
)
from .backends import (
    BruteForceSearchBackend,
    DpSearchBackend,
    DpVectorizedSearchBackend,
    FixedTypeSearchBackend,
    GreedySearchBackend,
    SearchBackend,
    available_backends,
    canonical_backend_name,
    get_backend,
    register_backend,
)
from .validate import validate_level, validate_plan
from .diff import PlanDifference, plan_diff

__all__ = [
    "BruteForceSearchBackend",
    "DpSearchBackend",
    "DpVectorizedSearchBackend",
    "FixedTypeSearchBackend",
    "GreedySearchBackend",
    "HierarchicalPlan",
    "JoinAlignment",
    "LayerAssignment",
    "LayerPartition",
    "LevelPlan",
    "PathExit",
    "PlanDifference",
    "PlanEntry",
    "SearchBackend",
    "SearchResult",
    "available_backends",
    "canonical_backend_name",
    "get_backend",
    "plan_diff",
    "register_backend",
    "validate_level",
    "validate_plan",
]
