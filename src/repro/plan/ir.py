"""The typed plan intermediate representation.

A plan entry is one of three variants:

* :class:`LayerAssignment` — the partition type and ratio α chosen for one
  weighted layer at one hierarchy level (Eq. 9 / Eq. 10);
* :class:`JoinAlignment` — the partition state chosen for the boundary
  tensor of a fork/join region (Section 5.2);
* :class:`PathExit` — the state one path's output tensor is in *before*
  re-alignment to the join state, recorded so consumers replay exactly the
  re-alignments the search costed.

:class:`LevelPlan` holds one level's ordered entry tuple and indexes it for
typed lookup — no consumer ever parses key strings.  Entry *order* is part
of the representation (it is the search's emission order and survives
serialization round-trips), which is why :class:`LevelPlan` keeps the tuple
alongside its indexes.

Entry constructors do not range-check α: plans arrive from JSON and hand
edits, and :mod:`repro.plan.validate` reports violations instead of
crashing mid-load.  :class:`LayerPartition` (the ratio-bearing decision
value consumers compute with) does validate, as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.types import ALL_TYPES, PartitionType


@dataclass(frozen=True)
class LayerPartition:
    """The decision for one layer at one hierarchy level.

    ``ratio`` is the share α of the *first* party (left child of the pairing
    tree node); the second party gets β = 1 - α.
    """

    ptype: PartitionType
    ratio: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio < 1.0:
            raise ValueError(f"ratio must be in (0, 1), got {self.ratio}")

    def __str__(self) -> str:
        return f"{self.ptype} (α={self.ratio:.3f})"


@dataclass(frozen=True)
class LayerAssignment:
    """One weighted layer's partition decision at one hierarchy level."""

    name: str
    ptype: PartitionType
    alpha: float = 0.5

    @property
    def ratio(self) -> float:
        return self.alpha

    @property
    def partition(self) -> LayerPartition:
        return LayerPartition(self.ptype, self.alpha)

    def __str__(self) -> str:
        return f"{self.name}: {self.ptype} (α={self.alpha:.3f})"


@dataclass(frozen=True)
class JoinAlignment:
    """The partition state chosen for a fork/join boundary tensor.

    ``alpha`` is the nominal ratio the alignment transfer was costed at (the
    cost model's nominal α — alignments describe transfers, not tensor
    splits, so quantization passes them through unchanged).
    """

    stage: str
    state: PartitionType
    alpha: float = 0.5

    @property
    def partition(self) -> LayerPartition:
        return LayerPartition(self.state, self.alpha)

    def __str__(self) -> str:
        return f"join {self.stage}: {self.state}"


@dataclass(frozen=True)
class PathExit:
    """One path's pre-alignment exit state in a fork/join region."""

    stage: str
    path_index: int
    state: PartitionType
    alpha: float = 0.5

    @property
    def partition(self) -> LayerPartition:
        return LayerPartition(self.state, self.alpha)

    def __str__(self) -> str:
        return f"exit {self.stage}[{self.path_index}]: {self.state}"


PlanEntry = Union[LayerAssignment, JoinAlignment, PathExit]


class LevelPlan:
    """Per-layer assignments for one hierarchy level (one pairing-tree node).

    Construct from an iterable of :data:`PlanEntry`; the entries keep their
    order (the search's emission order) and are indexed for O(1) typed
    lookup.  Duplicate layer names, duplicate join stages, or duplicate
    (stage, path) exits are construction errors — a level assigns each
    decision exactly once.
    """

    __slots__ = ("entries", "cost", "scheme", "_layers", "_joins", "_exits",
                 "_partitions")

    def __init__(self, entries: Iterable[PlanEntry] = (), cost: float = 0.0,
                 scheme: str = ""):
        self.entries: Tuple[PlanEntry, ...] = tuple(entries)
        self.cost = cost
        self.scheme = scheme
        layers: Dict[str, LayerAssignment] = {}
        joins: Dict[str, JoinAlignment] = {}
        exits: Dict[Tuple[str, int], PathExit] = {}
        for entry in self.entries:
            if isinstance(entry, LayerAssignment):
                if entry.name in layers:
                    raise ValueError(f"duplicate assignment for layer {entry.name!r}")
                layers[entry.name] = entry
            elif isinstance(entry, JoinAlignment):
                if entry.stage in joins:
                    raise ValueError(f"duplicate join alignment for stage {entry.stage!r}")
                joins[entry.stage] = entry
            elif isinstance(entry, PathExit):
                key = (entry.stage, entry.path_index)
                if key in exits:
                    raise ValueError(
                        f"duplicate path exit for stage {entry.stage!r} "
                        f"path {entry.path_index}"
                    )
                exits[key] = entry
            else:
                raise TypeError(f"not a plan entry: {entry!r}")
        self._layers = layers
        self._joins = joins
        self._exits = exits
        self._partitions: Optional[Dict[str, LayerPartition]] = None

    # -- typed iteration ------------------------------------------------
    def layers(self) -> Tuple[LayerAssignment, ...]:
        """The weighted-layer assignments, in entry order."""
        return tuple(e for e in self.entries if isinstance(e, LayerAssignment))

    def joins(self) -> Tuple[JoinAlignment, ...]:
        """The fork/join alignment entries, in entry order."""
        return tuple(e for e in self.entries if isinstance(e, JoinAlignment))

    def path_exits(self) -> Tuple[PathExit, ...]:
        """The per-path exit-state entries, in entry order."""
        return tuple(e for e in self.entries if isinstance(e, PathExit))

    # -- typed lookup ---------------------------------------------------
    def assignment(self, layer_name: str) -> LayerAssignment:
        return self._layers[layer_name]

    def partition(self, layer_name: str) -> LayerPartition:
        return self._partition_map()[layer_name]

    def alignment_for(self, stage_name: str) -> Optional[JoinAlignment]:
        """The join alignment chosen for a fork/join stage, if any."""
        return self._joins.get(stage_name)

    def path_exit(self, stage_name: str, path_index: int) -> Optional[PathExit]:
        """One path's recorded pre-alignment exit state, if any."""
        return self._exits.get((stage_name, path_index))

    def alignments_for(self, stage_name: str) -> Tuple[PlanEntry, ...]:
        """Every alignment-related entry of one fork/join stage.

        The stage's :class:`PathExit` entries in path order, then its
        :class:`JoinAlignment` (when recorded).
        """
        out: List[PlanEntry] = sorted(
            (e for e in self._exits.values() if e.stage == stage_name),
            key=lambda e: e.path_index,
        )
        join = self._joins.get(stage_name)
        if join is not None:
            out.append(join)
        return tuple(out)

    # -- aggregate views ------------------------------------------------
    def _partition_map(self) -> Dict[str, LayerPartition]:
        cached = self._partitions
        if cached is None:
            cached = {
                a.name: LayerPartition(a.ptype, a.alpha)
                for a in self._layers.values()
            }
            self._partitions = cached
        return cached

    def layer_assignments(self) -> Dict[str, LayerPartition]:
        """Layer name → :class:`LayerPartition` for the weighted layers."""
        return dict(self._partition_map())

    @property
    def assignments(self) -> Dict[str, LayerPartition]:
        """Read-only view of :meth:`layer_assignments` (a fresh copy).

        Weighted layers only — alignment entries are reached through
        :meth:`joins` / :meth:`path_exits` / :meth:`alignments_for`.
        """
        return self.layer_assignments()

    def type_counts(self) -> Dict[PartitionType, int]:
        counts = {t: 0 for t in ALL_TYPES}
        for a in self._layers.values():
            counts[a.ptype] += 1
        return counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LevelPlan):
            return NotImplemented
        return (self.entries == other.entries and self.cost == other.cost
                and self.scheme == other.scheme)

    def __repr__(self) -> str:
        return (f"LevelPlan({len(self._layers)} layers, "
                f"{len(self._joins)} joins, {len(self._exits)} exits, "
                f"cost={self.cost:.6g}, scheme={self.scheme!r})")


@dataclass
class HierarchicalPlan:
    """A plan for the whole pairing tree: one LevelPlan per internal node.

    The tree structure mirrors :class:`~repro.hardware.cluster.GroupNode`:
    ``level_plan`` applies at this node's split; ``left``/``right`` are the
    children's plans (``None`` for leaves).
    """

    level_plan: Optional[LevelPlan]
    left: Optional["HierarchicalPlan"] = None
    right: Optional["HierarchicalPlan"] = None
    scheme: str = ""

    @property
    def is_leaf(self) -> bool:
        return self.level_plan is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        left_d = self.left.depth() if self.left else 0
        right_d = self.right.depth() if self.right else 0
        return 1 + max(left_d, right_d)

    def validate(self, network, batch: int = 1) -> List[str]:
        """Structural validation against a network; see :func:`validate_plan`."""
        from .validate import validate_plan  # local import: validate uses ir

        return validate_plan(self, network, batch)


@dataclass
class SearchResult:
    """Outcome of one level's search, as ordered typed entries."""

    entries: Tuple[PlanEntry, ...]
    cost: float
    exit_state: Optional[PartitionType]

    @property
    def assignments(self) -> Dict[str, LayerPartition]:
        """Layer name → :class:`LayerPartition` (weighted layers only)."""
        return {
            e.name: LayerPartition(e.ptype, e.alpha)
            for e in self.entries
            if isinstance(e, LayerAssignment)
        }

    def types(self) -> Dict[str, PartitionType]:
        return {
            e.name: e.ptype for e in self.entries
            if isinstance(e, LayerAssignment)
        }

    def to_level_plan(self, scheme: str) -> LevelPlan:
        """Package this result as one hierarchy level's plan."""
        return LevelPlan(self.entries, cost=self.cost, scheme=scheme)
