"""Training-algorithm substrate: optimizer cost models and update rules."""

from .loop import (
    TrainingRun,
    compare_runs,
    conv_synthetic_task,
    synthetic_task,
    train_partitioned,
    train_partitioned_conv,
    train_reference,
    train_reference_conv,
)
from .optimizers import (
    ADAM,
    AdamRule,
    MOMENTUM,
    MomentumRule,
    OPTIMIZERS,
    OptimizerSpec,
    SGD,
    SgdRule,
    UpdateRule,
    get_optimizer,
    make_rule,
)

__all__ = [
    "ADAM",
    "AdamRule",
    "MOMENTUM",
    "MomentumRule",
    "OPTIMIZERS",
    "OptimizerSpec",
    "SGD",
    "SgdRule",
    "TrainingRun",
    "UpdateRule",
    "compare_runs",
    "conv_synthetic_task",
    "get_optimizer",
    "make_rule",
    "synthetic_task",
    "train_partitioned",
    "train_partitioned_conv",
    "train_reference",
    "train_reference_conv",
]
