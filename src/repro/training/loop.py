"""Multi-step training loops: reference vs two-device partitioned.

Extends the single-step validation of :mod:`repro.numeric` to full training
runs with a real optimizer: both executions must track each other weight-
for-weight across steps, and the loss must decrease on a learnable synthetic
task — the end-to-end demonstration that partitioned training *is* training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..numeric.reference import MlpSpec, reference_step
from ..numeric.two_device import LayerPlanNumeric, TwoDeviceExecutor
from .optimizers import make_rule


@dataclass
class TrainingRun:
    """History of one training loop."""

    losses: List[float]
    weights: List[np.ndarray]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def synthetic_task(
    spec: MlpSpec, batch: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """A learnable regression task: targets from a random teacher network."""
    rng = np.random.default_rng(seed + 1000)
    x = rng.standard_normal((batch, spec.widths[0]))
    teacher = spec.init_weights(seed + 2000)
    target = reference_step(teacher, x, np.zeros((batch, spec.widths[-1]))).activations[-1]
    return x, target


def train_reference(
    spec: MlpSpec,
    x: np.ndarray,
    target: np.ndarray,
    steps: int,
    optimizer: str = "sgd",
    seed: int = 0,
    **opt_kwargs,
) -> TrainingRun:
    """Plain single-device training."""
    weights = spec.init_weights(seed)
    rule = make_rule(optimizer, **opt_kwargs)
    losses = []
    for _ in range(steps):
        trace = reference_step(weights, x, target)
        losses.append(trace.loss)
        rule.apply(weights, trace.gradients)
    return TrainingRun(losses=losses, weights=weights)


def train_partitioned(
    spec: MlpSpec,
    plan: Sequence[LayerPlanNumeric],
    x: np.ndarray,
    target: np.ndarray,
    steps: int,
    optimizer: str = "sgd",
    seed: int = 0,
    **opt_kwargs,
) -> TrainingRun:
    """Two-device partitioned training.

    The optimizer update is element-wise on each device's weight shard;
    because shards tile the weight tensor exactly (and Type-I replicas see
    the identical combined gradient), applying the rule to the assembled
    tensors is mathematically the shard-local update.
    """
    weights = spec.init_weights(seed)
    executor = TwoDeviceExecutor(spec, weights, plan, batch=x.shape[0])
    rule = make_rule(optimizer, **opt_kwargs)
    losses = []
    for _ in range(steps):
        trace = executor.step(x, target)
        losses.append(trace.loss)
        rule.apply(executor.weights, trace.gradients)
    return TrainingRun(losses=losses, weights=executor.weights)


def compare_runs(a: TrainingRun, b: TrainingRun) -> float:
    """Largest absolute divergence between two runs' final weights."""
    return max(
        float(np.max(np.abs(wa - wb))) for wa, wb in zip(a.weights, b.weights)
    )


# ----------------------------------------------------------------------
# CONV counterparts
# ----------------------------------------------------------------------
def conv_synthetic_task(spec, batch: int, seed: int = 0):
    """A learnable CONV regression task from a random teacher network."""
    from ..numeric.conv_reference import CnnSpec, conv_reference_step

    assert isinstance(spec, CnnSpec)
    rng = np.random.default_rng(seed + 1000)
    x = rng.standard_normal((batch, spec.in_channels, spec.height, spec.width))
    teacher = spec.init_weights(seed + 2000)
    out_geom = spec.geometries()[-1]
    target = conv_reference_step(
        spec, teacher, x, np.zeros((batch, *out_geom))
    ).activations[-1]
    return x, target


def train_reference_conv(spec, x, target, steps: int, optimizer: str = "sgd",
                         seed: int = 0, **opt_kwargs) -> TrainingRun:
    from ..numeric.conv_reference import conv_reference_step

    weights = spec.init_weights(seed)
    rule = make_rule(optimizer, **opt_kwargs)
    losses = []
    for _ in range(steps):
        trace = conv_reference_step(spec, weights, x, target)
        losses.append(trace.loss)
        rule.apply(weights, trace.gradients)
    return TrainingRun(losses=losses, weights=weights)


def train_partitioned_conv(spec, plan, x, target, steps: int,
                           optimizer: str = "sgd", seed: int = 0,
                           **opt_kwargs) -> TrainingRun:
    from ..numeric.conv_partitioned import ConvTwoDeviceExecutor

    weights = spec.init_weights(seed)
    executor = ConvTwoDeviceExecutor(spec, weights, plan, batch=x.shape[0])
    rule = make_rule(optimizer, **opt_kwargs)
    losses = []
    for _ in range(steps):
        trace, _ = executor.step(x, target)
        losses.append(trace.loss)
        rule.apply(executor.weights, trace.gradients)
    return TrainingRun(losses=losses, weights=executor.weights)
