"""Optimizer models: the parameter-update rules of Section 2.1.

The paper notes its three tensor computing phases capture SGD, Momentum and
Adam alike — the *update* differs only in local element-wise work and
optimizer state.  Two views are provided:

* :class:`OptimizerSpec` — the cost-model view: per-weight FLOPs of the
  update and the number of persistent state tensors (for the simulator's
  update phase and the memory check).  The update is always local: every
  device applies it to its own weight shard, so no partitioning decision
  changes and no communication is added — exactly why the paper can ignore
  the optimizer in the search.
* the numpy update rules — the numeric view, used by the multi-step
  training validation in :mod:`repro.training.loop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class OptimizerSpec:
    """Cost-model description of an update rule.

    ``flops_per_weight`` counts the element-wise operations of one update;
    ``state_per_weight`` counts persistent state tensors of the weight's
    shape (0 for SGD, 1 velocity for Momentum, 2 moments for Adam).
    """

    name: str
    state_per_weight: int
    flops_per_weight: float

    def __post_init__(self) -> None:
        if self.state_per_weight < 0 or self.flops_per_weight < 0:
            raise ValueError("optimizer cost parameters must be non-negative")

    def update_load_tensors(self) -> int:
        """Tensors read per update: weight + gradient + state."""
        return 2 + self.state_per_weight

    def update_store_tensors(self) -> int:
        """Tensors written per update: weight + state."""
        return 1 + self.state_per_weight


#: w -= eta * g : one multiply + one subtract per weight
SGD = OptimizerSpec("sgd", state_per_weight=0, flops_per_weight=2.0)

#: v = gamma*v + eta*g ; w -= v : three multiplies/adds + one subtract
MOMENTUM = OptimizerSpec("momentum", state_per_weight=1, flops_per_weight=4.0)

#: m, v moment updates + bias correction + scaled step (Kingma & Ba, 2014)
ADAM = OptimizerSpec("adam", state_per_weight=2, flops_per_weight=12.0)

OPTIMIZERS: Dict[str, OptimizerSpec] = {o.name: o for o in (SGD, MOMENTUM, ADAM)}


def get_optimizer(name: str) -> OptimizerSpec:
    key = name.lower()
    if key not in OPTIMIZERS:
        raise KeyError(f"unknown optimizer {name!r}; available: {sorted(OPTIMIZERS)}")
    return OPTIMIZERS[key]


# ----------------------------------------------------------------------
# numpy update rules (the numeric view)
# ----------------------------------------------------------------------
class UpdateRule:
    """Stateful numpy update rule applied to a list of weight tensors."""

    name: str = "base"

    def apply(self, weights: List[np.ndarray],
              gradients: Sequence[np.ndarray]) -> None:
        raise NotImplementedError


class SgdRule(UpdateRule):
    name = "sgd"

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def apply(self, weights, gradients):
        for w, g in zip(weights, gradients):
            w -= self.lr * g


class MomentumRule(UpdateRule):
    """v_t = gamma * v_{t-1} + eta * grad ; w -= v_t (Section 2.1)."""

    name = "momentum"

    def __init__(self, lr: float = 0.01, gamma: float = 0.9):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= gamma < 1.0:
            raise ValueError("momentum gamma must be in [0, 1)")
        self.lr = lr
        self.gamma = gamma
        self._velocity: List[np.ndarray] = []

    def apply(self, weights, gradients):
        if not self._velocity:
            self._velocity = [np.zeros_like(w) for w in weights]
        for w, g, v in zip(weights, gradients, self._velocity):
            v *= self.gamma
            v += self.lr * g
            w -= v


class AdamRule(UpdateRule):
    """Adaptive moment estimation with bias correction."""

    name = "adam"

    def __init__(self, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def apply(self, weights, gradients):
        if not self._m:
            self._m = [np.zeros_like(w) for w in weights]
            self._v = [np.zeros_like(w) for w in weights]
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for w, g, m, v in zip(weights, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            w -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.epsilon)


def make_rule(name: str, **kwargs) -> UpdateRule:
    """Build a numpy update rule by optimizer name."""
    rules = {"sgd": SgdRule, "momentum": MomentumRule, "adam": AdamRule}
    key = name.lower()
    if key not in rules:
        raise KeyError(f"unknown optimizer {name!r}; available: {sorted(rules)}")
    return rules[key](**kwargs)
