"""Service metrics: named counters and latency histograms with a text view.

Deliberately dependency-free (no prometheus client in the image): counters
are plain locked integers and histograms keep a bounded reservoir of recent
observations, enough for the p50/p95/p99 the service reports.  The renderer
produces the ``service-stats`` snapshot and the benchmark artifacts.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Reservoir of recent latency observations with exact-rank percentiles.

    Keeps the most recent ``window`` samples (deque eviction), which biases
    percentiles toward current behavior — the right bias for a serving
    dashboard.  ``count``/``total`` cover every observation ever made.
    """

    def __init__(self, name: str, window: int = 4096):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir; None when empty."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(1, round(p / 100 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "mean": (self.total / self.count) if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Creates-on-first-use registry of counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str, window: int = 4096) -> LatencyHistogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(name, window)
            return self._histograms[name]

    def value(self, name: str) -> int:
        """Current value of a counter (0 if it was never incremented)."""
        with self._lock:
            counter = self._counters.get(name)
        return counter.value if counter else 0

    def snapshot(self) -> Dict:
        """JSON-compatible dump of every metric."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "histograms": {n: h.summary() for n, h in sorted(histograms.items())},
        }

    def render(self, title: str = "service metrics") -> str:
        """Aligned text snapshot (the ``service-stats`` output)."""
        snap = self.snapshot()
        lines: List[str] = [title]
        if not snap["counters"] and not snap["histograms"]:
            lines.append("  (no metrics recorded)")
            return "\n".join(lines)
        width = max((len(n) for n in snap["counters"]), default=0)
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
        for name, s in snap["histograms"].items():
            if not s["count"]:
                lines.append(f"  {name}  count=0")
                continue
            lines.append(
                f"  {name}  count={s['count']}"
                f" mean={s['mean'] * 1e3:.2f}ms"
                f" p50={s['p50'] * 1e3:.2f}ms"
                f" p95={s['p95'] * 1e3:.2f}ms"
                f" p99={s['p99'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)
