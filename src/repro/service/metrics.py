"""Service metrics — re-export shim over :mod:`repro.obs.registry`.

The counter/histogram primitives the plan service uses moved into the
unified observability registry (``repro.obs.registry``), which also adds
Prometheus text-exposition rendering; this module keeps the historical
import path (``from repro.service.metrics import MetricsRegistry``)
pointing at the very same classes.
"""

from __future__ import annotations

from ..obs.registry import Counter, LatencyHistogram, MetricsRegistry

__all__ = ["Counter", "LatencyHistogram", "MetricsRegistry"]
