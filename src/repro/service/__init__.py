"""Plan-serving subsystem: turn the one-shot planner into a service.

The AccPar planner is an offline optimizer — O(N·|T|²) per hierarchy level —
but its output is reused across many identical requests (same model, array
and knobs).  This package adds the serving layer the ROADMAP's
production-scale goal asks for:

* :class:`PlanRequest` / fingerprinting — content-addressed request keys;
* :class:`PlanCache` — in-memory LRU over an optional JSON disk tier;
* :class:`SingleFlight` — concurrent identical requests plan exactly once;
* :class:`PlanService` — worker pool, deadline fallback to the greedy
  scheme (``degraded=True``) with background refinement of the cache entry;
* :class:`MetricsRegistry` — counters and latency percentiles;
* :mod:`~repro.service.server` — the JSON-lines loop behind
  ``python -m repro serve`` / ``warm`` / ``service-stats``.

See docs/serving.md for the architecture and the fingerprint stability
contract.
"""

from .cache import CacheStats, PlanCache
from .fingerprint import REQUEST_SCHEMA_VERSION, PlanRequest
from .metrics import Counter, LatencyHistogram, MetricsRegistry
from .server import serve_loop, warm_cache
from .service import PlanResponse, PlanService, build_scheme
from .singleflight import SingleFlight

__all__ = [
    "CacheStats",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "PlanCache",
    "PlanRequest",
    "PlanResponse",
    "PlanService",
    "REQUEST_SCHEMA_VERSION",
    "SingleFlight",
    "build_scheme",
    "serve_loop",
    "warm_cache",
]
