"""Two-tier content-addressed plan cache: in-memory LRU over optional disk.

Tier 1 is a thread-safe LRU of :class:`~repro.core.planner.PlannedExecution`
objects keyed by request fingerprint.  Tier 2 (optional) is a directory of
JSON documents in the :mod:`repro.core.serialize` format, one file per
fingerprint — which makes the disk tier shareable between ``warm`` runs and
later ``serve`` processes, and even hand-inspectable with ``jq``.

Disk documents that fail to load are treated as misses, not errors: the
cache must never make a serveable request fail.  Two failure classes are
kept apart:

* **forward-compat misses** — a well-formed document this build cannot
  use (future schema version, unregistered model).  Counted in
  ``disk_errors`` and left in place: a newer build may read it fine.
* **corruption** — unparseable JSON or a checksum mismatch (torn write,
  bit rot, hand edits).  Every entry is written with an embedded SHA-256
  ``checksum`` over its canonical JSON; an entry that fails the check is
  **quarantined** — renamed to ``<fingerprint>.json.corrupt`` rather than
  deleted, so operators can inspect what broke — and counted in
  ``corrupt_total`` (exposed as ``repro_cache_corrupt_total``).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple

from ..core.planner import PlannedExecution
from ..core.serialize import plan_from_dict, plan_to_dict
from ..graph.network import Network
from ..ioutil import atomic_write_text
from ..obs.logging import get_logger

log = get_logger("repro.service.cache")

#: suffix appended to a quarantined disk entry's filename
CORRUPT_SUFFIX = ".corrupt"


def entry_checksum(document: dict) -> str:
    """SHA-256 over a disk entry's canonical JSON, checksum field excluded."""
    payload = {k: v for k, v in document.items() if k != "checksum"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters for every way a lookup or insert can go."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_errors: int = 0
    corrupt_total: int = 0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "disk_errors": self.disk_errors,
            "corrupt_total": self.corrupt_total,
        }


class PlanCache:
    """LRU plan cache with an optional persistent disk tier.

    ``capacity`` bounds the in-memory tier only; the disk tier grows without
    bound (plans are a few KB each).  A disk hit is promoted into memory so
    repeated lookups pay the JSON parse once.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir=None,
        network_builder: Optional[Callable[[str], Network]] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._network_builder = network_builder
        self._entries: "OrderedDict[str, PlannedExecution]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[PlannedExecution]:
        planned, _ = self.get_with_tier(key)
        return planned

    def peek(self, key: str) -> Optional[PlannedExecution]:
        """Memory-tier lookup that records no stats and touches no LRU order.

        For internal correctness re-checks (single-flight race closing) that
        must not distort the hit/miss counters.
        """
        with self._lock:
            return self._entries.get(key)

    def get_with_tier(self, key: str) -> Tuple[Optional[PlannedExecution], Optional[str]]:
        """Look up a fingerprint; returns ``(plan, "memory"|"disk"|None)``."""
        with self._lock:
            planned = self._entries.get(key)
            if planned is not None:
                self._entries.move_to_end(key)
                self.stats.hits_memory += 1
                return planned, "memory"

        planned = self._load_disk(key)
        if planned is not None:
            with self._lock:
                self.stats.hits_disk += 1
                self._insert(key, planned)
            return planned, "disk"

        with self._lock:
            self.stats.misses += 1
        return None, None

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def put(self, key: str, planned: PlannedExecution, persist: bool = True) -> None:
        with self._lock:
            self.stats.puts += 1
            self._insert(key, planned)
        if persist:
            self._store_disk(key, planned)

    def _insert(self, key: str, planned: PlannedExecution) -> None:
        # caller holds the lock
        self._entries[key] = planned
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.json"

    def _load_disk(self, key: str) -> Optional[PlannedExecution]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            text = path.read_text()
        except OSError:
            with self._lock:
                self.stats.disk_errors += 1
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            self._quarantine(path, f"unparseable JSON: {exc}")
            return None
        if isinstance(data, dict) and "checksum" in data and \
                data["checksum"] != entry_checksum(data):
            self._quarantine(path, "checksum mismatch")
            return None
        try:
            return plan_from_dict(data, network_builder=self._network_builder)
        except (ValueError, KeyError, OSError):
            # a well-formed entry this build cannot use (future schema,
            # unknown model): degrade to a miss and leave the file — a
            # newer build may read it fine
            with self._lock:
                self.stats.disk_errors += 1
            return None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never delete: evidence, not trash)."""
        target = path.with_name(path.name + CORRUPT_SUFFIX)
        try:
            path.rename(target)
        except OSError:
            target = None  # a concurrent reader may have beaten us to it
        with self._lock:
            self.stats.disk_errors += 1
            self.stats.corrupt_total += 1
        log.warning("quarantined corrupt cache entry", extra={
            "event": "cache_quarantine", "path": str(path),
            "quarantined_to": str(target) if target else None,
            "reason": reason})

    def _store_disk(self, key: str, planned: PlannedExecution) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        document = plan_to_dict(planned)
        document["fingerprint"] = key
        document["checksum"] = entry_checksum(document)
        # unique temp name + os.replace: atomic against concurrent readers
        # AND concurrent writers of the same fingerprint
        atomic_write_text(path, json.dumps(document, indent=2))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def memory_keys(self):
        with self._lock:
            return list(self._entries)

    def disk_keys(self):
        if self.disk_dir is None:
            return []
        return sorted(p.stem for p in self.disk_dir.glob("*.json"))

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
        if disk and self.disk_dir is not None:
            for path in self.disk_dir.glob("*.json"):
                path.unlink()
