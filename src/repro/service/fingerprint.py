"""Canonical plan requests and their content-addressed fingerprints.

A :class:`PlanRequest` is the unit of work the plan service accepts: every
knob that can change the resulting plan is a field here, and
:meth:`PlanRequest.fingerprint` folds them all — including the *structure*
of the named model, not just its name — into one stable hex key.  Two
requests with equal fingerprints are guaranteed to produce byte-identical
plans, which is what makes single-flight coalescing and the content-addressed
cache sound.

Stability contract (documented in docs/serving.md): fingerprints only change
when ``REQUEST_SCHEMA_VERSION`` is bumped, which invalidates every persisted
cache entry at once rather than silently serving stale plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..digest import stable_digest
from ..graph.network import Network
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.profile import CalibratedProfile
from ..models.registry import build_model

#: bump when the fingerprint payload layout (or plan semantics) changes;
#: folded into every key so old disk-cache entries simply stop matching
#: (v2: per-request search backend + typed plan-entry serialization;
#: v3: hardware profile in the payload — calibrated and analytic plans
#: must never share a cache entry)
REQUEST_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class PlanRequest:
    """Everything that determines a plan, in canonical form.

    ``space`` and ``ratio_mode`` are the AccPar ablation knobs
    (:class:`repro.core.planner.AccParScheme`); leaving them ``None`` means
    "the scheme's defaults" and hashes distinctly from pinning the defaults
    explicitly — by design, since a scheme's defaults may evolve.  The same
    convention covers ``backend``: ``None`` keeps the scheme's default search
    backend, a name from :func:`repro.plan.available_backends` overrides it.
    ``profile`` re-prices the cost model with calibrated effective rates;
    ``None`` is the peak analytic model, and the profile's content digest
    is part of the fingerprint.
    """

    model: str
    array: AcceleratorGroup
    batch: int = 512
    scheme: str = "accpar"
    dtype_bytes: int = 2
    levels: Optional[int] = None
    space: Optional[Tuple[str, ...]] = None      # PartitionType values, e.g. ("I", "II")
    ratio_mode: Optional[str] = None             # "balanced" | "equal" | "proportional"
    backend: Optional[str] = None                # search backend name, e.g. "greedy"
    profile: Optional[CalibratedProfile] = None  # calibrated rates; None = analytic

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.space is not None:
            object.__setattr__(self, "space", tuple(self.space))
        if self.profile is not None and getattr(self.profile, "is_analytic", False):
            # the analytic profile IS the default; canonicalize so both
            # spellings share one fingerprint (and one cache entry)
            object.__setattr__(self, "profile", None)

    def build_network(
        self, network_builder: Optional[Callable[[str], Network]] = None
    ) -> Network:
        builder = network_builder or build_model
        return builder(self.model)

    def fingerprint(
        self, network_builder: Optional[Callable[[str], Network]] = None
    ) -> str:
        """The cache key: a stable hash over the full request content.

        The model is resolved through the registry (or ``network_builder``)
        and its structural fingerprint is hashed, so re-registering a model
        name with a different architecture can never hit a stale entry.
        """
        network = self.build_network(network_builder)
        return stable_digest(
            {
                "schema": REQUEST_SCHEMA_VERSION,
                "model": self.model.lower(),
                "network": network.fingerprint(),
                "array": self.array.fingerprint(),
                "batch": self.batch,
                "scheme": self.scheme.lower(),
                "dtype_bytes": self.dtype_bytes,
                "levels": self.levels,
                "space": list(self.space) if self.space is not None else None,
                "ratio_mode": self.ratio_mode,
                "backend": self.backend.lower() if self.backend else None,
                "profile": (self.profile.fingerprint()
                            if self.profile is not None else None),
            }
        )
