"""Single-flight request coalescing: one in-flight job per fingerprint.

The classic Go ``singleflight`` shape: the first caller for a key becomes
the *leader* and owns producing the result; everyone else arriving while the
job is in flight becomes a *follower* and waits on the same future.  The
plan service wraps every cache miss in this, so a thundering herd of
identical requests costs exactly one O(N·|T|²) planning run.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Tuple


class SingleFlight:
    """Keyed coalescing of concurrent producers."""

    def __init__(self):
        self._flights: Dict[str, Future] = {}
        self._lock = threading.Lock()

    def begin(self, key: str) -> Tuple[Future, bool]:
        """Join (or open) the flight for ``key``.

        Returns ``(future, is_leader)``.  The leader MUST eventually resolve
        the future (result or exception) and then call :meth:`finish`, or
        followers wait forever.
        """
        with self._lock:
            existing = self._flights.get(key)
            if existing is not None:
                return existing, False
            future: Future = Future()
            self._flights[key] = future
            return future, True

    def finish(self, key: str) -> None:
        """Close the flight; later callers for ``key`` start a new one.

        Call only after the result is visible wherever followers would look
        next (i.e. after the cache ``put``), so a caller that just missed
        this flight re-finds the result instead of replanning.
        """
        with self._lock:
            self._flights.pop(key, None)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)
