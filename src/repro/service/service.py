"""The plan service: cache → single-flight → worker pool → deadline fallback.

Request lifecycle (:meth:`PlanService.plan`):

1. **fingerprint** the request (model structure + array + knobs);
2. **cache lookup** — a memory or disk hit returns immediately;
3. **single-flight** — on a miss, the first caller becomes the leader and
   submits one exact planning job to the worker pool; concurrent identical
   requests coalesce onto the same in-flight future;
4. **deadline** — a caller whose deadline expires before the exact job lands
   gets a fast fallback plan marked ``degraded=True``: the *same* scheme and
   knobs re-run under the service's fallback search backend (greedy unless
   configured otherwise).  The exact job keeps running in the pool and
   upgrades the cache entry when it finishes (background refinement), so the
   *next* request gets the exact plan.

Distinct fingerprints run concurrently across the pool; identical ones never
plan twice.  All counters land in a :class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..baselines import get_scheme
from ..core.counters import planner_counters
from ..core.hierarchy import PartitionScheme
from ..core.planner import AccParScheme, GreedyScheme, PlannedExecution, Planner
from ..core.types import PartitionType
from ..graph.network import Network
from ..plan.backends import get_backend
from ..obs import telemetry as telemetry_store
from ..obs.logging import get_logger, slow_request_threshold_s
from ..obs.registry import render_prometheus
from ..obs.slo import SLOTracker, render_slo_lines
from ..obs.tracing import new_trace_id, tracer
from .cache import PlanCache
from .fingerprint import PlanRequest
from .metrics import MetricsRegistry
from .singleflight import SingleFlight

log = get_logger("repro.service")


@dataclass
class PlanResponse:
    """A served plan plus how it was produced.

    ``source`` is one of ``memory`` / ``disk`` (cache tiers), ``planned``
    (this call ran the planner), ``coalesced`` (another in-flight request ran
    it) or ``degraded`` (deadline fallback).
    """

    planned: PlannedExecution
    fingerprint: str
    source: str
    degraded: bool
    coalesced: bool
    latency_s: float
    trace_id: str = ""

    @property
    def cache_hit(self) -> bool:
        return self.source in ("memory", "disk")


def build_scheme(
    request: PlanRequest, backend_override: Optional[str] = None
) -> PartitionScheme:
    """Resolve a request's scheme name + ablation knobs into a scheme object.

    The ``space`` / ``ratio_mode`` knobs parameterize the AccPar (and greedy)
    search; the fixed baselines (dp/owt/hypar) have no such knobs and reject
    them rather than silently ignoring cache-key-relevant input.  The search
    backend is, in precedence order: ``backend_override`` (the service's
    deadline fallback path), then the request's ``backend`` field, then the
    scheme's own default.
    """
    name = request.scheme.lower()
    backend = backend_override if backend_override is not None else request.backend
    if backend is not None:
        get_backend(backend)  # fail fast on unknown names, before planning
    space = (
        tuple(PartitionType(v) for v in request.space)
        if request.space is not None
        else None
    )
    if name in ("accpar", "greedy"):
        cls = AccParScheme if name == "accpar" else GreedyScheme
        kwargs = {}
        if space is not None:
            kwargs["space"] = space
        if request.ratio_mode is not None:
            kwargs["ratio_mode"] = request.ratio_mode
        if backend is not None:
            kwargs["backend"] = backend
        if request.profile is not None:
            kwargs["profile"] = request.profile
        return cls(**kwargs)
    if space is not None or request.ratio_mode is not None:
        raise ValueError(
            f"scheme {request.scheme!r} does not accept space/ratio_mode knobs"
        )
    return get_scheme(name, backend=backend, profile=request.profile)


class PlanService:
    """Long-running, concurrent planning front-end over the AccPar planner."""

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        network_builder: Optional[Callable[[str], Network]] = None,
        slow_request_s: Optional[float] = None,
        fallback_backend: str = "greedy",
        slo=None,
        telemetry=None,
        telemetry_labels: Optional[dict] = None,
        default_profile=None,
    ):
        self.cache = cache if cache is not None else PlanCache()
        #: hardware profile substituted into requests that do not pin one
        #: (``serve --profile``).  Applied *before* fingerprinting, so the
        #: cache keys — and the fleet's shard routing — always reflect the
        #: rates that actually priced the plan.
        self.default_profile = (
            None if default_profile is None
            or getattr(default_profile, "is_analytic", False)
            else default_profile
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: SLO accounting — ``slo`` may be an SLOTracker, an SLOConfig, a
        #: spec string ("latency_ms=250,objective=0.99") or None (defaults)
        self.slo = slo if isinstance(slo, SLOTracker) else SLOTracker(slo)
        #: durable telemetry — an explicit writer, or whatever is installed
        #: process-wide (``serve --telemetry-dir`` / REPRO_TELEMETRY_DIR);
        #: every producer path guards on ``enabled`` before building events
        self.telemetry = telemetry if telemetry is not None \
            else telemetry_store.active()
        #: constant fields merged into every request event (the fleet shard
        #: passes ``{"shard": name}`` so events join the metric series)
        self.telemetry_labels = dict(telemetry_labels or {})
        #: search backend for the deadline-degraded path; validated eagerly
        #: so a typo surfaces at construction, not on the first slow request
        get_backend(fallback_backend)
        self.fallback_backend = fallback_backend
        #: requests slower than this log a structured warning; defaults to
        #: the REPRO_SLOW_REQUEST_MS environment variable, then 1 s
        self.slow_request_s = slow_request_threshold_s(slow_request_s)
        self._network_builder = network_builder
        self._flight = SingleFlight()
        self._pool = ThreadPoolExecutor(
            max_workers=workers or os.cpu_count() or 4,
            thread_name_prefix="plan-worker",
        )
        self._pending: set = set()
        self._pending_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def plan(
        self,
        request: PlanRequest,
        deadline_s: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> PlanResponse:
        """Serve one request, waiting at most ``deadline_s`` for exactness.

        ``deadline_s=None`` waits for the exact plan.  A deadline of 0 is
        legal and means "whatever is ready right now or the greedy fallback".

        Every request gets a trace id — a fresh one unless the caller
        passes ``trace_id`` (the fleet frontend does, so one id follows a
        request across the frontend and the owning shard process).  It is
        active on this thread for the duration of the call (spans and log
        lines pick it up), propagated into the worker that plans on the
        request's behalf, and returned on the :class:`PlanResponse`.
        """
        if self._closed:
            raise RuntimeError("PlanService is closed")
        trace_id = trace_id or new_trace_id()
        previous_trace_id = tracer.current_trace_id()
        tracer.set_trace_id(trace_id)
        try:
            with tracer.span("service.request", category="service",
                             model=request.model, scheme=request.scheme):
                return self._plan_traced(request, deadline_s, trace_id)
        finally:
            tracer.set_trace_id(previous_trace_id)

    def _plan_traced(
        self, request: PlanRequest, deadline_s: Optional[float], trace_id: str
    ) -> PlanResponse:
        start = time.perf_counter()
        if self.default_profile is not None and request.profile is None:
            # substitute before fingerprinting: a profiled service must key
            # (and cache) its plans under the profile that priced them
            request = dataclasses.replace(request, profile=self.default_profile)
        self.metrics.counter("requests").inc()
        with tracer.span("service.fingerprint", category="service"):
            key = request.fingerprint(self._network_builder)
        after_fingerprint = time.perf_counter()

        with tracer.span("service.cache_lookup", category="service"):
            planned, tier = self.cache.get_with_tier(key)
        after_lookup = time.perf_counter()
        phases = (after_fingerprint - start, after_lookup - after_fingerprint)
        if planned is not None:
            self.metrics.counter(f"hits_{tier}").inc()
            return self._respond(planned, key, tier, start, trace_id,
                                 degraded=False, coalesced=False,
                                 deadline_s=deadline_s, phases=phases)

        self.metrics.counter("misses").inc()
        future, leader = self._flight.begin(key)
        if leader:
            self._submit_exact(key, request, future, trace_id)
        else:
            self.metrics.counter("coalesced").inc()

        try:
            with tracer.span("service.singleflight_wait", category="service",
                             leader=leader):
                planned = future.result(timeout=deadline_s)
        except FutureTimeout:
            self.metrics.counter("degraded").inc()
            with tracer.span("service.degraded_fallback", category="service"):
                planned = self._plan_degraded(request)
            return self._respond(planned, key, "degraded", start, trace_id,
                                 degraded=True, coalesced=not leader,
                                 deadline_s=deadline_s, phases=phases)
        except Exception:
            self.metrics.counter("errors").inc()
            self._observe_failure(request, key, start, trace_id, deadline_s)
            raise

        source = "planned" if leader else "coalesced"
        return self._respond(planned, key, source, start, trace_id,
                             degraded=False, coalesced=not leader,
                             deadline_s=deadline_s, phases=phases)

    def warm(self, requests: Iterable[PlanRequest]) -> List[PlanResponse]:
        """Pre-populate the cache; returns one response per request."""
        return [self.plan(request) for request in requests]

    # ------------------------------------------------------------------
    # planning internals
    # ------------------------------------------------------------------
    def _submit_exact(self, key: str, request: PlanRequest, future: Future,
                      trace_id: str = "") -> None:
        def job() -> None:
            # the worker thread inherits the requesting thread's trace id so
            # the exact-planning spans and logs correlate with the request
            tracer.set_trace_id(trace_id or None)
            try:
                # a caller can miss the cache, then lose the begin() race to
                # a leader that already finished: re-check before planning so
                # a fingerprint is never planned twice
                planned = self.cache.peek(key)
                if planned is None:
                    self.metrics.counter("planner_runs").inc()
                    t0 = time.perf_counter()
                    with tracer.span("service.plan_exact", category="service",
                                     model=request.model,
                                     scheme=request.scheme,
                                     fingerprint=key):
                        planned = self._plan_exact(request)
                    self.metrics.histogram("exact_plan_s").observe(
                        time.perf_counter() - t0
                    )
                    self.cache.put(key, planned)
                future.set_result(planned)
            except BaseException as exc:  # must reach the waiting callers
                future.set_exception(exc)
            finally:
                # only after the put: a new caller either finds the cache
                # entry or joins a still-open flight, never a stale gap
                self._flight.finish(key)

        pooled = self._pool.submit(job)
        with self._pending_lock:
            self._pending.add(pooled)
        pooled.add_done_callback(self._discard_pending)

    def _discard_pending(self, fut: Future) -> None:
        with self._pending_lock:
            self._pending.discard(fut)

    def _plan_exact(self, request: PlanRequest) -> PlannedExecution:
        planner = Planner(
            request.array,
            build_scheme(request),
            dtype_bytes=request.dtype_bytes,
            levels=request.levels,
        )
        return planner.plan(request.build_network(self._network_builder),
                            request.batch)

    def _plan_degraded(self, request: PlanRequest) -> PlannedExecution:
        """The deadline fallback: same scheme, fallback search backend, inline.

        Deliberately NOT cached — the background exact job owns the cache
        entry, so a degraded answer can never mask the exact plan.
        """
        planner = Planner(
            request.array,
            build_scheme(request, backend_override=self.fallback_backend),
            dtype_bytes=request.dtype_bytes,
            levels=request.levels,
        )
        return planner.plan(request.build_network(self._network_builder),
                            request.batch)

    def _observe_failure(
        self,
        request: PlanRequest,
        key: str,
        start: float,
        trace_id: str,
        deadline_s: Optional[float],
    ) -> None:
        """SLO + telemetry accounting for the raising (error) path."""
        latency = time.perf_counter() - start
        deadline_met = False if deadline_s is not None else None
        self.slo.observe(latency, ok=False, deadline_met=deadline_met)
        t = self.telemetry
        if t is not None and t.enabled:
            event = {
                "type": "request",
                "component": "service",
                "fingerprint": key,
                "model": request.model,
                "scheme": request.scheme,
                "source": "error",
                "outcome": "error",
                "latency_ms": round(latency * 1e3, 3),
                "trace_id": trace_id,
            }
            if deadline_s is not None:
                event["deadline_ms"] = round(deadline_s * 1e3, 3)
                event["deadline_met"] = False
            if self.telemetry_labels:
                event.update(self.telemetry_labels)
            t.record(event)

    def _respond(
        self,
        planned: PlannedExecution,
        key: str,
        source: str,
        start: float,
        trace_id: str,
        degraded: bool,
        coalesced: bool,
        deadline_s: Optional[float] = None,
        phases: Optional[tuple] = None,
    ) -> PlanResponse:
        latency = time.perf_counter() - start
        self.metrics.histogram("request_latency_s").observe(latency)
        deadline_met = (latency <= deadline_s) if deadline_s is not None \
            else None
        self.slo.observe(latency, ok=True, deadline_met=deadline_met)
        t = self.telemetry
        if t is not None and t.enabled:
            event = {
                "type": "request",
                "component": "service",
                "fingerprint": key,
                "model": planned.network_name,
                "scheme": planned.scheme,
                "source": source,
                "outcome": "degraded" if degraded else "ok",
                "degraded": degraded,
                "coalesced": coalesced,
                "latency_ms": round(latency * 1e3, 3),
                "trace_id": trace_id,
            }
            if deadline_s is not None:
                event["deadline_ms"] = round(deadline_s * 1e3, 3)
                event["deadline_met"] = deadline_met
            if phases is not None:
                # span-derived breakdown without needing the tracer on:
                # fingerprint / cache lookup / everything after (plan wait)
                event["breakdown_ms"] = {
                    "fingerprint": round(phases[0] * 1e3, 3),
                    "cache_lookup": round(phases[1] * 1e3, 3),
                    "plan_wait": round(
                        (latency - phases[0] - phases[1]) * 1e3, 3),
                }
            if self.telemetry_labels:
                event.update(self.telemetry_labels)
            t.record(event)
        if latency >= self.slow_request_s:
            self.metrics.counter("slow_requests").inc()
            log.warning(
                "slow plan request",
                extra={
                    "trace_id": trace_id,
                    "fingerprint": key,
                    "model": planned.network_name,
                    "source": source,
                    "degraded": degraded,
                    "latency_ms": round(latency * 1e3, 3),
                    "threshold_ms": round(self.slow_request_s * 1e3, 3),
                },
            )
        return PlanResponse(
            planned=planned,
            fingerprint=key,
            source=source,
            degraded=degraded,
            coalesced=coalesced,
            latency_s=latency,
            trace_id=trace_id,
        )

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def pending_jobs(self) -> int:
        """Planning jobs currently in flight in the worker pool."""
        with self._pending_lock:
            return len(self._pending)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every in-flight planning job has finished.

        Lets callers observe background refinement deterministically (tests,
        clean shutdown); new requests may still be submitted afterwards.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._pending_lock:
                pending = list(self._pending)
            if not pending:
                return
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("drain timed out with jobs in flight")
            for fut in pending:
                fut.exception(timeout=remaining)

    def snapshot(self) -> dict:
        """JSON-compatible stats: metrics, cache counters, planner counters.

        ``planner`` holds the process-wide search-work counters
        (:data:`repro.core.counters.planner_counters`): step calls and cache
        hits, ratio-solver path split, hierarchy memo hits, multipath DP
        runs — the cold-path cost behind every ``planner_runs`` increment.
        """
        cache_stats = self.cache.stats.as_dict()
        cache_stats["memory_entries"] = len(self.cache)
        cache_stats["disk_entries"] = len(self.cache.disk_keys())
        snap = {
            "metrics": self.metrics.snapshot(),
            "cache": cache_stats,
            "planner": planner_counters.snapshot(),
            "slo": self.slo.snapshot(),
            "tracer": tracer.health(),
        }
        if self.telemetry is not None:
            snap["telemetry"] = self.telemetry.snapshot()
        return snap

    def render_stats(self) -> str:
        snap = self.snapshot()
        lines = [self.metrics.render()]
        cache = snap["cache"]
        lines.append("plan cache")
        width = max(len(k) for k in cache)
        for name, value in sorted(cache.items()):
            lines.append(f"  {name:<{width}}  {value}")
        planner = snap["planner"]
        lines.append("planner counters")
        if not planner:
            lines.append("  (no planner work recorded)")
        else:
            width = max(len(k) for k in planner)
            for name, value in planner.items():
                lines.append(f"  {name:<{width}}  {value}")
        lines.append(render_slo_lines(snap["slo"]))
        health = snap["tracer"]
        lines.append("tracer")
        lines.append(
            f"  spans_started={health['spans_started']}"
            f" spans_dropped={health['spans_dropped']}"
            f" buffer={health['buffer_len']}"
            f" high_water={health['buffer_high_water']}"
            f"/{health['max_spans']}"
        )
        telemetry = snap.get("telemetry")
        if telemetry:
            lines.append("telemetry")
            lines.append(
                f"  dir={telemetry['directory']}"
                f" events_written={telemetry['events_written']}"
                f" events_dropped={telemetry['events_dropped']}"
                f" segment={telemetry['segment_seq']}"
            )
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """The full stats snapshot as Prometheus text exposition."""
        return render_prometheus(self.snapshot())

    def close(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
