"""JSON-lines front-end for the plan service (``python -m repro serve``).

One request per line on stdin, one JSON response per line on stdout — the
simplest protocol that scripts, ``xargs`` and load generators can all drive.
A request looks like::

    {"model": "alexnet", "array": "hetero", "batch": 512, "deadline_ms": 50}

Optional fields: ``scheme`` (default ``accpar``), ``levels``, ``dtype_bytes``,
``space`` (partition-type values, e.g. ``["I", "II"]``), ``ratio_mode``,
``backend`` (search backend name, e.g. ``"greedy"``), ``id`` (echoed back).
Control operations use ``op``::

    {"op": "stats"}        -> metrics + cache counters
    {"op": "shutdown"}     -> drain and exit the loop

Malformed input produces an ``{"ok": false, "error": ...}`` line and the
loop keeps serving — a bad client must not take the service down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO

from ..ioutil import atomic_write_text
from .fingerprint import PlanRequest
from .service import PlanResponse, PlanService

#: request lines longer than this are rejected with a structured
#: ``{"ok": false, "error": "request too large"}`` before JSON parsing —
#: a misbehaving client cannot make the loop buffer unbounded input.
#: Mirrors the v2 frame cap (repro.fleet.wire.MAX_REQUEST_FRAME_BYTES).
MAX_REQUEST_BYTES = 1 << 20

#: the control operations the JSON-lines protocol understands; anything
#: else is answered with a structured unknown-op error naming this list
KNOWN_OPS = ("plan", "stats", "shutdown")

#: name of the stats snapshot dropped next to the disk cache tier; carries a
#: leading underscore and a .txt suffix so the ``*.json`` entry glob skips it
STATS_SNAPSHOT_NAME = "_last_session_stats.txt"

#: machine-readable twin of the text snapshot (leading underscore keeps it
#: out of the ``*.json`` plan-entry glob); ``repro service-stats --format
#: json/prometheus`` renders from this file offline
STATS_SNAPSHOT_JSON_NAME = "_last_session_stats.meta"


def request_from_doc(doc: Dict) -> PlanRequest:
    """Build a canonical :class:`PlanRequest` from a JSON request document.

    Only ``op == "plan"`` documents (the default) describe a plan request;
    any other ``op`` is rejected here so a control operation (or a typo'd
    one) can never be silently misread as a planning job by callers that
    skip :func:`handle_line` — the fleet frontend routes documents through
    this function directly.
    """
    from ..cli import parse_array  # deferred: the CLI imports this module

    op = doc.get("op", "plan")
    if op != "plan":
        raise ValueError(
            f"unknown op {op!r} for a plan request; known ops: "
            + ", ".join(KNOWN_OPS)
        )
    if "model" not in doc:
        raise ValueError("request needs a 'model' field")
    array = doc.get("array", "hetero")
    if isinstance(array, str):
        array = parse_array(array)
    space = doc.get("space")
    # an inline profile rides along as its v1 JSON document ("analytic" /
    # null keep the peak-rate default); resolved here so a malformed one is
    # rejected at the protocol boundary, not inside a worker thread
    profile = doc.get("profile")
    if profile is not None and profile != "analytic":
        from ..hardware.profile import profile_from_doc

        if not isinstance(profile, dict):
            raise ValueError(
                "'profile' must be a repro.hardware.profile/v1 object, "
                "\"analytic\" or null"
            )
        profile = profile_from_doc(profile)
        if getattr(profile, "is_analytic", False):
            profile = None
    else:
        profile = None
    return PlanRequest(
        model=doc["model"],
        array=array,
        batch=int(doc.get("batch", 512)),
        scheme=doc.get("scheme", "accpar"),
        dtype_bytes=int(doc.get("dtype_bytes", 2)),
        levels=doc.get("levels"),
        space=tuple(space) if space is not None else None,
        ratio_mode=doc.get("ratio_mode"),
        backend=doc.get("backend"),
        profile=profile,
    )


def response_to_doc(response: PlanResponse) -> Dict:
    planned = response.planned
    root_cost = (
        planned.root_level_plan.cost if planned.hierarchy_levels() > 0 else None
    )
    return {
        "ok": True,
        "fingerprint": response.fingerprint,
        "trace_id": response.trace_id,
        "source": response.source,
        "cache_hit": response.cache_hit,
        "degraded": response.degraded,
        "coalesced": response.coalesced,
        "latency_ms": round(response.latency_s * 1e3, 3),
        "model": planned.network_name,
        "scheme": planned.scheme,
        "batch": planned.batch,
        "levels": planned.hierarchy_levels(),
        "root_cost": root_cost,
    }


def handle_line(service: PlanService, line: str) -> Dict:
    """Process one request line into one response document.

    A ``shutdown`` op **drains first, then acknowledges**: every in-flight
    planning job (including background exact refinement behind a degraded
    response) finishes and reaches the disk cache before the
    ``{"ok": true, "op": "shutdown"}`` ack is produced — a client that
    reads the ack knows its plans are durable.  The serving loop stops
    after writing that ack.
    """
    if len(line) > MAX_REQUEST_BYTES:
        return {"ok": False, "error": "request too large",
                "limit_bytes": MAX_REQUEST_BYTES, "got_bytes": len(line)}
    text = line.strip()
    if not text:
        return {"ok": False, "error": "empty request line"}
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"bad JSON: {exc}"}
    if not isinstance(doc, dict):
        return {"ok": False, "error": "request must be a JSON object"}

    op = doc.get("op", "plan")
    request_id = doc.get("id")
    try:
        if op == "shutdown":
            pending = service.pending_jobs()
            service.drain()
            write_stats_snapshot(service)
            result: Dict = {"ok": True, "op": "shutdown",
                            "drained_jobs": pending}
        elif op == "stats":
            result = {"ok": True, "stats": service.snapshot()}
        elif op == "plan":
            deadline_ms = doc.get("deadline_ms")
            deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
            response = service.plan(request_from_doc(doc), deadline_s=deadline_s)
            result = response_to_doc(response)
        else:
            result = {"ok": False, "error": f"unknown op {op!r}",
                      "known_ops": list(KNOWN_OPS)}
    except Exception as exc:  # a bad request must not kill the loop
        result = {"ok": False, "error": str(exc)}
    if request_id is not None:
        result["id"] = request_id
    return result


def is_shutdown_ack(result: Dict) -> bool:
    """True for the response document that ends a serving loop."""
    return bool(result.get("ok")) and result.get("op") == "shutdown"


def serve_loop(service: PlanService, lines: Iterable[str], out: TextIO) -> int:
    """Serve requests until EOF or a shutdown op; returns served-line count.

    Shutdown ordering matters: :func:`handle_line` drains in-flight jobs
    *before* producing the shutdown ack, so by the time the client reads
    the ack every plan — including background refinements racing the
    shutdown — has been written to the disk cache.
    """
    served = 0
    for line in lines:
        result = handle_line(service, line)
        out.write(json.dumps(result) + "\n")
        out.flush()
        served += 1
        if is_shutdown_ack(result):
            return served
    service.drain()
    write_stats_snapshot(service)
    return served


def warm_cache(
    service: PlanService, requests: Iterable[PlanRequest]
) -> List[PlanResponse]:
    """Pre-populate the cache and persist a stats snapshot alongside it."""
    responses = service.warm(requests)
    service.drain()
    write_stats_snapshot(service)
    return responses


def write_stats_snapshot(service: PlanService) -> None:
    """Drop stats files next to the disk cache tier (if any).

    Two artifacts, written atomically: the human-readable text snapshot
    (``service-stats``'s default view) and its JSON twin, which the
    ``--format json`` / ``--format prometheus`` renderers consume without
    holding the service process open.
    """
    disk_dir = service.cache.disk_dir
    if disk_dir is None:
        return
    atomic_write_text(disk_dir / STATS_SNAPSHOT_NAME,
                      service.render_stats() + "\n")
    atomic_write_text(disk_dir / STATS_SNAPSHOT_JSON_NAME,
                      json.dumps(service.snapshot(), indent=2) + "\n")


def load_stats_snapshot(disk_dir) -> Optional[Dict]:
    """The last session's JSON stats snapshot, or None when absent/corrupt."""
    path = Path(disk_dir) / STATS_SNAPSHOT_JSON_NAME
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def describe_cache_dir(disk_dir) -> str:
    """Offline summary of a disk cache tier, for ``service-stats``."""
    disk_dir = Path(disk_dir)
    if not disk_dir.is_dir():
        return f"{disk_dir}: no cache directory"
    entries = sorted(disk_dir.glob("*.json"))
    lines = [f"disk cache {disk_dir}: {len(entries)} plan(s), "
             f"{sum(p.stat().st_size for p in entries)} bytes"]
    by_model: Dict[str, int] = {}
    for path in entries:
        try:
            doc = json.loads(path.read_text())
            label = f"{doc.get('network', '?')} / {doc.get('scheme', '?')} " \
                    f"/ batch {doc.get('batch', '?')}"
        except (json.JSONDecodeError, OSError):
            label = "(unreadable)"
        by_model[label] = by_model.get(label, 0) + 1
    for label in sorted(by_model):
        lines.append(f"  {by_model[label]}x {label}")
    snapshot = disk_dir / STATS_SNAPSHOT_NAME
    if snapshot.exists():
        lines += ["", "last session:", snapshot.read_text().rstrip()]
    return "\n".join(lines)
