"""Graph IR: layers, shapes, and the network DAG."""

from .layers import (
    Add,
    BatchNorm,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    Layer,
    LayerWorkload,
    Linear,
    LocalResponseNorm,
    Pool2d,
    ReLU,
)
from .network import (
    GraphError,
    LayerStage,
    Network,
    ParallelStage,
    Stage,
    count_stage_layers,
    iter_stage_workloads,
)
from .shapes import FeatureMap, TensorShape, conv_output_hw, pool_output_hw
from .validate import validate_network

__all__ = [
    "Add",
    "BatchNorm",
    "Conv2d",
    "Dropout",
    "FeatureMap",
    "Flatten",
    "GlobalAvgPool",
    "GraphError",
    "Input",
    "Layer",
    "LayerStage",
    "LayerWorkload",
    "Linear",
    "LocalResponseNorm",
    "Network",
    "ParallelStage",
    "Pool2d",
    "ReLU",
    "Stage",
    "TensorShape",
    "conv_output_hw",
    "count_stage_layers",
    "iter_stage_workloads",
    "pool_output_hw",
    "validate_network",
]
