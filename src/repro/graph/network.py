"""DNN graph container: a DAG of layers plus the structure the planner needs.

Two views of a network coexist here:

* the **full DAG** over every layer (weighted or not) — used for shape
  inference and validation;
* the **stage decomposition** — a series-parallel skeleton over weighted
  layers only, which is what the AccPar search (Section 5) operates on.
  Element-wise and shape-only layers are folded away because they are
  computed in place (Section 3.1) and carry no partitionable kernel.

A stage is either a single weighted layer (:class:`LayerStage`) or a
fork/join region (:class:`ParallelStage`) whose paths are themselves stage
lists — the multi-path pattern of Figure 4.  Nested forks (which do not occur
in the paper's model zoo but are legal) are handled recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .layers import Add, FeatureMap, Input, Layer, LayerWorkload


@dataclass(frozen=True)
class LayerStage:
    """One weighted layer in the planner's chain."""

    workload: LayerWorkload

    @property
    def name(self) -> str:
        return self.workload.name


@dataclass(frozen=True)
class ParallelStage:
    """A fork/join region: parallel paths of stages between two cut points.

    An empty path represents an identity skip connection.
    """

    paths: Tuple[Tuple["Stage", ...], ...]
    name: str = "parallel"

    def __post_init__(self) -> None:
        if len(self.paths) < 2:
            raise ValueError("a ParallelStage needs at least two paths")


Stage = Union[LayerStage, ParallelStage]


def iter_stage_workloads(stages: Sequence[Stage]) -> Iterable[LayerWorkload]:
    """All weighted-layer workloads in a stage list, in topological order."""
    for stage in stages:
        if isinstance(stage, LayerStage):
            yield stage.workload
        else:
            for path in stage.paths:
                yield from iter_stage_workloads(path)


def count_stage_layers(stages: Sequence[Stage]) -> int:
    return sum(1 for _ in iter_stage_workloads(stages))


class GraphError(ValueError):
    """Raised for malformed network graphs."""


class Network:
    """A directed acyclic graph of named layers.

    Layers are appended with :meth:`add`; by default each layer consumes the
    previously-added one, so linear networks read like a plain ``Sequential``.
    Fork/join topologies pass explicit ``inputs``.
    """

    def __init__(self, name: str, input_layer: Input):
        self.name = name
        self._layers: Dict[str, Layer] = {}
        self._preds: Dict[str, List[str]] = {}
        self._succs: Dict[str, List[str]] = {}
        self._last: Optional[str] = None
        self._input_name = input_layer.name
        self._register(input_layer, [])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _register(self, layer: Layer, inputs: List[str]) -> None:
        if layer.name in self._layers:
            raise GraphError(f"duplicate layer name {layer.name!r} in network {self.name!r}")
        self._layers[layer.name] = layer
        self._preds[layer.name] = list(inputs)
        self._succs[layer.name] = []
        for parent in inputs:
            if parent not in self._layers:
                raise GraphError(f"unknown input layer {parent!r} for {layer.name!r}")
            self._succs[parent].append(layer.name)
        self._last = layer.name

    def add(self, layer: Layer, inputs: Optional[Sequence[str]] = None) -> str:
        """Append ``layer``; returns its name for later wiring."""
        if inputs is None:
            if self._last is None:
                raise GraphError("network has no layers to chain from")
            inputs = [self._last]
        if isinstance(layer, Input):
            raise GraphError("a network has exactly one Input layer")
        if not inputs:
            raise GraphError(f"layer {layer.name!r} must consume at least one input")
        self._register(layer, list(inputs))
        return layer.name

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def input_name(self) -> str:
        return self._input_name

    def layer(self, name: str) -> Layer:
        return self._layers[name]

    def layer_names(self) -> List[str]:
        return list(self._layers)

    def predecessors(self, name: str) -> List[str]:
        return list(self._preds[name])

    def successors(self, name: str) -> List[str]:
        return list(self._succs[name])

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    @property
    def output_name(self) -> str:
        """The unique sink of the DAG."""
        sinks = [n for n, s in self._succs.items() if not s]
        if len(sinks) != 1:
            raise GraphError(f"network {self.name!r} has {len(sinks)} sinks, expected 1")
        return sinks[0]

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        indeg = {n: len(p) for n, p in self._preds.items()}
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in self._succs[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._layers):
            raise GraphError(f"network {self.name!r} contains a cycle")
        return order

    def infer_shapes(self, batch: int) -> Dict[str, FeatureMap]:
        """Output feature map of every layer for the given mini-batch size."""
        input_layer = self._layers[self._input_name]
        assert isinstance(input_layer, Input)
        shapes: Dict[str, FeatureMap] = {self._input_name: input_layer.feature_map(batch)}
        for name in self.topological_order():
            if name == self._input_name:
                continue
            layer = self._layers[name]
            in_shapes = [shapes[p] for p in self._preds[name]]
            if isinstance(layer, Add):
                shapes[name] = layer.infer_many(in_shapes)
            else:
                if len(in_shapes) != 1:
                    raise GraphError(
                        f"layer {name!r} has {len(in_shapes)} inputs but is not a join layer"
                    )
                shapes[name] = layer.infer(in_shapes[0])
        return shapes

    def workloads(self, batch: int) -> List[LayerWorkload]:
        """Cost-model workloads of all weighted layers, topologically ordered."""
        shapes = self.infer_shapes(batch)
        result = []
        for name in self.topological_order():
            layer = self._layers[name]
            if layer.weighted:
                (pred,) = self._preds[name]
                workload = layer.workload(shapes[pred])
                assert workload is not None
                result.append(workload)
        return result

    # ------------------------------------------------------------------
    # series-parallel stage decomposition
    # ------------------------------------------------------------------
    def _immediate_post_dominators(self) -> Dict[str, Optional[str]]:
        """ipdom per node, via the classic iterative algorithm on the reverse DAG."""
        order = self.topological_order()
        sink = self.output_name
        index = {n: i for i, n in enumerate(order)}
        ipdom: Dict[str, Optional[str]] = {n: None for n in order}
        ipdom[sink] = sink

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] < index[b]:
                    nxt = ipdom[a]
                    assert nxt is not None
                    a = nxt
                while index[b] < index[a]:
                    nxt = ipdom[b]
                    assert nxt is not None
                    b = nxt
            return a

        changed = True
        while changed:
            changed = False
            for node in reversed(order):
                if node == sink:
                    continue
                succs = [s for s in self._succs[node] if ipdom[s] is not None]
                if not succs:
                    continue
                new = succs[0]
                for succ in succs[1:]:
                    new = intersect(new, succ)
                if ipdom[node] != new:
                    ipdom[node] = new
                    changed = True
        ipdom[sink] = None
        return ipdom

    def stages(self, batch: int) -> List[Stage]:
        """Decompose the network into the planner's series-parallel stages.

        The graph must be two-terminal series-parallel over its fork/join
        structure (every fork's paths stay disjoint until the matching join);
        graphs where paths overlap — e.g. two forks emanating from the same
        node with different joins — raise :class:`GraphError`.
        """
        shapes = self.infer_shapes(batch)
        ipdom = self._immediate_post_dominators()

        def workload_of(name: str) -> LayerWorkload:
            layer = self._layers[name]
            (pred,) = self._preds[name]
            workload = layer.workload(shapes[pred])
            assert workload is not None
            return workload

        def walk(node: Optional[str], stop: Optional[str]) -> List[Stage]:
            """Stages from ``node`` (inclusive) up to ``stop`` (exclusive)."""
            out: List[Stage] = []
            while node is not None and node != stop:
                layer = self._layers[node]
                if layer.weighted:
                    out.append(LayerStage(workload_of(node)))
                succs = self._succs[node]
                if not succs:
                    node = None
                elif len(succs) == 1:
                    node = succs[0]
                else:
                    join = ipdom[node]
                    if join is None:
                        raise GraphError(
                            f"fork at {node!r} never re-joins before the network sink"
                        )
                    paths = tuple(tuple(walk(s, join)) for s in succs)
                    # Only materialize a ParallelStage when at least one path
                    # carries a weighted layer; an all-identity fork (e.g. a
                    # tensor consumed twice by element-wise ops) is a no-op
                    # for the planner.
                    if any(path for path in paths):
                        out.append(ParallelStage(paths=paths, name=f"fork@{node}"))
                    node = join
            return out

        result = walk(self._input_name, None)

        seen: set = set()
        duplicates = set()
        for workload in iter_stage_workloads(result):
            if workload.name in seen:
                duplicates.add(workload.name)
            seen.add(workload.name)
        if duplicates:
            raise GraphError(
                f"network {self.name!r} is not series-parallel decomposable: "
                f"layers {sorted(duplicates)} are shared between fork paths"
            )
        missing = {w.name for w in self.workloads(batch)} - seen
        if missing:
            raise GraphError(
                f"network {self.name!r}: stage decomposition missed layers "
                f"{sorted(missing)}"
            )
        return result

    def fingerprint(self, batch: int = 1) -> str:
        """Stable content hash of the graph structure and its shapes.

        Covers the network name, every layer's class and wiring, and the
        per-layer output feature maps at ``batch`` — so two registrations of
        the same model name with different architectures hash differently,
        which is what makes the plan-service cache safe against model
        redefinition.  ``batch`` defaults to 1 because shapes at any fixed
        batch identify the architecture; request batch is hashed separately
        by the service.
        """
        from ..digest import stable_digest

        shapes = self.infer_shapes(batch)
        layers = [
            {
                "name": name,
                "kind": type(self._layers[name]).__name__,
                "inputs": self._preds[name],
                "shape": list(shapes[name].shape),
            }
            for name in self.topological_order()
        ]
        return stable_digest({"name": self.name, "layers": layers})

    def describe(self, batch: int) -> str:
        """Human-readable per-layer summary (name, type, output shape)."""
        shapes = self.infer_shapes(batch)
        lines = [f"Network {self.name!r} (batch={batch})"]
        for name in self.topological_order():
            layer = self._layers[name]
            fm = shapes[name]
            tag = type(layer).__name__
            lines.append(f"  {name:<16} {tag:<18} -> {fm.shape}")
        return "\n".join(lines)
