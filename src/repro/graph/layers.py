"""Layer definitions for the DNN graph IR.

The planner only *partitions* weighted layers (CONV and FC — the three
training mat-muls of Section 2.1 exist only there), but shape inference has to
flow through every layer of real networks, so the IR also models pooling,
activations, normalization, dropout, flatten and the element-wise residual
add used by ResNet.

Every layer implements :meth:`Layer.infer`, mapping an input
:class:`~repro.graph.shapes.FeatureMap` to the output one.  Weighted layers
additionally expose a :class:`LayerWorkload` — the bundle of dimensions the
AccPar cost model consumes (Tables 4-6): ``B``, ``D_i``, ``D_o``, the spatial
extents and the kernel window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .shapes import FeatureMap, TensorShape, conv_output_hw, pool_output_hw


def _pair(value) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a pair."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2 or not all(isinstance(v, int) for v in pair):
        raise ValueError(f"expected an int or a pair of ints, got {value!r}")
    return pair  # type: ignore[return-value]


@dataclass(frozen=True)
class LayerWorkload:
    """Dimensions of one weighted layer, as consumed by the cost model.

    Attributes mirror Table 1 of the paper.  ``kernel_hw`` is ``(1, 1)`` and
    the spatial sizes are ``1`` for FC layers, which makes the FC formulas a
    special case of the CONV ones (Section 4.3).
    """

    name: str
    batch: int                # B
    d_in: int                 # D_{i,l}
    d_out: int                # D_{o,l}
    in_hw: Tuple[int, int]    # (H, W) of F_l
    out_hw: Tuple[int, int]   # (H, W) of F_{l+1}
    kernel_hw: Tuple[int, int]  # (K_h, K_w) of W_l
    is_conv: bool

    # --- tensor sizes: the paper's A(.) --------------------------------
    @property
    def input_fm(self) -> TensorShape:
        """Shape of F_l (and of E_l)."""
        return TensorShape((self.batch, self.d_in, *self.in_hw))

    @property
    def output_fm(self) -> TensorShape:
        """Shape of F_{l+1} (and of E_{l+1})."""
        return TensorShape((self.batch, self.d_out, *self.out_hw))

    @property
    def weight(self) -> TensorShape:
        """Shape of W_l (and of the gradient ΔW_l)."""
        return TensorShape((self.d_in, self.d_out, *self.kernel_hw))

    @property
    def in_spatial(self) -> int:
        return self.in_hw[0] * self.in_hw[1]

    @property
    def out_spatial(self) -> int:
        return self.out_hw[0] * self.out_hw[1]

    @property
    def kernel_spatial(self) -> int:
        return self.kernel_hw[0] * self.kernel_hw[1]

    def with_batch(self, batch: int) -> "LayerWorkload":
        """The same layer run at a different mini-batch size."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        return LayerWorkload(
            name=self.name,
            batch=batch,
            d_in=self.d_in,
            d_out=self.d_out,
            in_hw=self.in_hw,
            out_hw=self.out_hw,
            kernel_hw=self.kernel_hw,
            is_conv=self.is_conv,
        )


class Layer:
    """Base class of all IR layers."""

    #: whether the layer carries a trainable kernel and hence is partitioned
    weighted: bool = False

    def __init__(self, name: str):
        if not name:
            raise ValueError("layer name must be non-empty")
        self.name = name

    def infer(self, fm: FeatureMap) -> FeatureMap:
        """Shape inference: output feature map for the given input."""
        raise NotImplementedError

    def workload(self, fm: FeatureMap) -> Optional[LayerWorkload]:
        """Cost-model workload, or ``None`` for unweighted layers."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Conv2d(Layer):
    """2-D convolution: the CONV case of the three training mat-muls."""

    weighted = True

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel,
        stride=1,
        padding=0,
    ):
        super().__init__(name)
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = _pair(kernel)
        self.stride = _pair(stride)
        self.padding = _pair(padding)

    def infer(self, fm: FeatureMap) -> FeatureMap:
        if fm.channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {fm.channels}"
            )
        out_h, out_w = conv_output_hw(fm.height, fm.width, self.kernel, self.stride, self.padding)
        return FeatureMap(fm.batch, self.out_channels, out_h, out_w)

    def workload(self, fm: FeatureMap) -> LayerWorkload:
        out = self.infer(fm)
        return LayerWorkload(
            name=self.name,
            batch=fm.batch,
            d_in=self.in_channels,
            d_out=self.out_channels,
            in_hw=(fm.height, fm.width),
            out_hw=(out.height, out.width),
            kernel_hw=self.kernel,
            is_conv=True,
        )


class Linear(Layer):
    """Fully-connected layer: the FC case of Section 3.1."""

    weighted = True

    def __init__(self, name: str, in_features: int, out_features: int):
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features

    def infer(self, fm: FeatureMap) -> FeatureMap:
        flat = fm.channels * fm.height * fm.width
        if flat != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {flat}"
            )
        return FeatureMap(fm.batch, self.out_features, 1, 1)

    def workload(self, fm: FeatureMap) -> LayerWorkload:
        self.infer(fm)  # validates
        return LayerWorkload(
            name=self.name,
            batch=fm.batch,
            d_in=self.in_features,
            d_out=self.out_features,
            in_hw=(1, 1),
            out_hw=(1, 1),
            kernel_hw=(1, 1),
            is_conv=False,
        )


class Pool2d(Layer):
    """Max or average pooling (shape-only for the cost model)."""

    def __init__(self, name: str, kernel, stride=None, padding=0, mode: str = "max",
                 ceil_mode: bool = False):
        super().__init__(name)
        if mode not in ("max", "avg"):
            raise ValueError(f"pool mode must be 'max' or 'avg', got {mode!r}")
        self.kernel = _pair(kernel)
        self.stride = _pair(stride) if stride is not None else self.kernel
        self.padding = _pair(padding)
        self.mode = mode
        self.ceil_mode = ceil_mode

    def infer(self, fm: FeatureMap) -> FeatureMap:
        out_h, out_w = pool_output_hw(
            fm.height, fm.width, self.kernel, self.stride, self.padding, self.ceil_mode
        )
        return FeatureMap(fm.batch, fm.channels, out_h, out_w)


class GlobalAvgPool(Layer):
    """Global average pooling, as used before ResNet's classifier."""

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return FeatureMap(fm.batch, fm.channels, 1, 1)


class ReLU(Layer):
    """Element-wise activation — performed in place (Section 3.1)."""

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm


class BatchNorm(Layer):
    """Batch normalization; shape-preserving, folded into the adjacent CONV."""

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm


class LocalResponseNorm(Layer):
    """AlexNet-era LRN; shape preserving."""

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm


class Dropout(Layer):
    """Dropout; shape preserving, training-time element-wise mask."""

    def __init__(self, name: str, p: float = 0.5):
        super().__init__(name)
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm


class Flatten(Layer):
    """Collapse (C, H, W) into a feature vector before FC layers."""

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return FeatureMap(fm.batch, fm.channels * fm.height * fm.width, 1, 1)


class Add(Layer):
    """Element-wise residual addition (the ResNet join node).

    ``infer`` receives the first input's shape; :meth:`infer_many` validates
    that all inputs agree.
    """

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm

    def infer_many(self, fms: Sequence[FeatureMap]) -> FeatureMap:
        if not fms:
            raise ValueError(f"{self.name}: Add requires at least one input")
        first = fms[0]
        for other in fms[1:]:
            if other != first:
                raise ValueError(
                    f"{self.name}: mismatched Add inputs {first} vs {other}"
                )
        return first


class Input(Layer):
    """Source node pinning the network's input feature-map geometry."""

    def __init__(self, name: str, channels: int, height: int = 1, width: int = 1):
        super().__init__(name)
        self.channels = channels
        self.height = height
        self.width = width

    def feature_map(self, batch: int) -> FeatureMap:
        return FeatureMap(batch, self.channels, self.height, self.width)

    def infer(self, fm: FeatureMap) -> FeatureMap:
        return fm
