"""Structural validation for :class:`~repro.graph.network.Network` graphs.

The planner assumes a well-formed two-terminal series-parallel DAG; these
checks catch malformed model definitions early with actionable messages
instead of failing deep inside the search.
"""

from __future__ import annotations

from typing import List

from .layers import Add, Input
from .network import GraphError, Network


def validate_network(net: Network, batch: int = 2) -> List[str]:
    """Run all structural checks; returns warnings, raises on hard errors.

    Hard errors (raised as :class:`GraphError`):

    * cycles, unreachable layers, multiple sinks;
    * shape-inference failures at the given probe batch size;
    * join layers that are not :class:`Add`, or :class:`Add` with one input.

    Soft issues are returned as human-readable warning strings.
    """
    warnings: List[str] = []

    order = net.topological_order()  # raises on cycles
    reachable = _reachable_from_input(net)
    unreachable = [n for n in order if n not in reachable]
    if unreachable:
        raise GraphError(f"layers unreachable from the input: {unreachable}")

    net.output_name  # raises if not a single sink

    for name in order:
        layer = net.layer(name)
        preds = net.predecessors(name)
        if len(preds) > 1 and not isinstance(layer, Add):
            raise GraphError(
                f"layer {name!r} joins {len(preds)} inputs but is {type(layer).__name__}; "
                "only Add may join paths"
            )
        if isinstance(layer, Add) and len(preds) < 2:
            warnings.append(f"Add layer {name!r} has a single input; it is a no-op")
        if isinstance(layer, Input) and name != net.input_name:
            raise GraphError(f"extra Input layer {name!r}")

    net.infer_shapes(batch)  # raises on shape mismatches

    if not net.workloads(batch):
        warnings.append(f"network {net.name!r} has no weighted layers; nothing to partition")

    return warnings


def _reachable_from_input(net: Network) -> set:
    seen = {net.input_name}
    frontier = [net.input_name]
    while frontier:
        node = frontier.pop()
        for succ in net.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen
