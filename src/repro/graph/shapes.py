"""Tensor shape primitives shared across the graph IR, cost model and simulator.

The paper works with three logical dimensions per layer (Table 1):

* ``B`` — mini-batch size,
* ``D_i`` — input data size (channel count for CONV, fan-in for FC),
* ``D_o`` — output data size (channel count for CONV, fan-out for FC),

plus, for convolutional layers, "meta" spatial dimensions (Section 3.3): the
feature-map height/width and the kernel window height/width.  Everything the
cost model needs reduces to sizes of four tensors per layer:

* ``F_l``   — input feature map, shape ``(B, D_i, [H_i, W_i])``
* ``F_l+1`` — output feature map, shape ``(B, D_o, [H_o, W_o])``
* ``E_l``   — input error (same shape as ``F_l``)
* ``W_l``   — kernel, shape ``(D_i, D_o, [K_h, K_w])``

This module provides a small immutable :class:`TensorShape` plus the
feature-map geometry helpers used for shape inference in
:mod:`repro.graph.layers`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TensorShape:
    """Immutable n-dimensional tensor shape.

    ``size`` follows the paper's :math:`\\mathbb{A}(\\cdot)` — the product of
    the lengths of all dimensions (Section 4.1).
    """

    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("TensorShape requires at least one dimension")
        for d in self.dims:
            if not isinstance(d, int) or d <= 0:
                raise ValueError(f"dimensions must be positive integers, got {self.dims!r}")

    @property
    def size(self) -> int:
        """Number of elements — the paper's A(T)."""
        return math.prod(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __getitem__(self, idx: int) -> int:
        return self.dims[idx]

    def __str__(self) -> str:
        return "(" + ", ".join(str(d) for d in self.dims) + ")"

    def bytes(self, dtype_bytes: int = 2) -> int:
        """Size in bytes for the given element width (default bfloat16)."""
        if dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        return self.size * dtype_bytes


@dataclass(frozen=True)
class FeatureMap:
    """Logical shape of an activation tensor: (batch, channels, height, width).

    For fully-connected activations the spatial extent is 1x1, which makes the
    FC case a degenerate CONV case — exactly the reduction Section 3.3 uses.
    """

    batch: int
    channels: int
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        for name in ("batch", "channels", "height", "width"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")

    @property
    def shape(self) -> TensorShape:
        return TensorShape((self.batch, self.channels, self.height, self.width))

    @property
    def size(self) -> int:
        return self.shape.size

    @property
    def spatial_size(self) -> int:
        """The 2D feature-map size (Section 4.3's "meta dimension" product)."""
        return self.height * self.width

    def with_batch(self, batch: int) -> "FeatureMap":
        return FeatureMap(batch, self.channels, self.height, self.width)


def conv_output_hw(
    height: int,
    width: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Standard convolution output geometry (floor convention)."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution geometry produces non-positive output: "
            f"in=({height},{width}) kernel={kernel} stride={stride} padding={padding}"
        )
    return out_h, out_w


def pool_output_hw(
    height: int,
    width: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int] = (0, 0),
    ceil_mode: bool = False,
) -> Tuple[int, int]:
    """Pooling output geometry; ``ceil_mode`` matches classic Caffe layers."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    rounding = math.ceil if ceil_mode else math.floor
    out_h = int(rounding((height + 2 * ph - kh) / sh)) + 1
    out_w = int(rounding((width + 2 * pw - kw) / sw)) + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pooling geometry produces non-positive output: "
            f"in=({height},{width}) kernel={kernel} stride={stride} padding={padding}"
        )
    return out_h, out_w
