"""AlexNet (Krizhevsky et al., 2012), single-tower variant, ImageNet input.

Layer names (``cv1``..``cv5``, ``fc1``..``fc3``) follow Figure 7 of the
AccPar paper so the per-layer partition-type experiment reads identically.
"""

from __future__ import annotations

from ..graph import (
    Conv2d,
    Dropout,
    Flatten,
    Input,
    Linear,
    LocalResponseNorm,
    Network,
    Pool2d,
    ReLU,
)


def alexnet() -> Network:
    net = Network("alexnet", Input("input", channels=3, height=224, width=224))
    net.add(Conv2d("cv1", 3, 96, kernel=11, stride=4, padding=2))
    net.add(ReLU("relu1"))
    net.add(LocalResponseNorm("lrn1"))
    net.add(Pool2d("pool1", kernel=3, stride=2))
    net.add(Conv2d("cv2", 96, 256, kernel=5, stride=1, padding=2))
    net.add(ReLU("relu2"))
    net.add(LocalResponseNorm("lrn2"))
    net.add(Pool2d("pool2", kernel=3, stride=2))
    net.add(Conv2d("cv3", 256, 384, kernel=3, stride=1, padding=1))
    net.add(ReLU("relu3"))
    net.add(Conv2d("cv4", 384, 384, kernel=3, stride=1, padding=1))
    net.add(ReLU("relu4"))
    net.add(Conv2d("cv5", 384, 256, kernel=3, stride=1, padding=1))
    net.add(ReLU("relu5"))
    net.add(Pool2d("pool5", kernel=3, stride=2))
    net.add(Flatten("flatten"))
    net.add(Linear("fc1", 256 * 6 * 6, 4096))
    net.add(ReLU("relu6"))
    net.add(Dropout("drop1", 0.5))
    net.add(Linear("fc2", 4096, 4096))
    net.add(ReLU("relu7"))
    net.add(Dropout("drop2", 0.5))
    net.add(Linear("fc3", 4096, 1000))
    return net
