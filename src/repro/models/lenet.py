"""LeNet-5 (LeCun et al., 1998) on MNIST — the paper's smallest workload."""

from __future__ import annotations

from ..graph import Conv2d, Flatten, Input, Linear, Network, Pool2d, ReLU


def lenet() -> Network:
    """Classic LeNet-5: two CONV/pool stages and three FC layers, 1x28x28 input."""
    net = Network("lenet", Input("input", channels=1, height=28, width=28))
    net.add(Conv2d("cv1", 1, 6, kernel=5, stride=1, padding=2))
    net.add(ReLU("relu1"))
    net.add(Pool2d("pool1", kernel=2, stride=2))
    net.add(Conv2d("cv2", 6, 16, kernel=5, stride=1, padding=0))
    net.add(ReLU("relu2"))
    net.add(Pool2d("pool2", kernel=2, stride=2))
    net.add(Flatten("flatten"))
    net.add(Linear("fc1", 16 * 5 * 5, 120))
    net.add(ReLU("relu3"))
    net.add(Linear("fc2", 120, 84))
    net.add(ReLU("relu4"))
    net.add(Linear("fc3", 84, 10))
    return net
