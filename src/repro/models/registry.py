"""Model registry: the paper's nine evaluation DNNs by name.

Section 6.1 lists "nine DNNs" and enumerates Lenet, Alexnet, Vgg11, Vgg13,
Vgg19 and Resnet18/34/50; the ninth (present in the figures) is Vgg16, which
we include.  Models are built lazily so importing the registry is cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..graph import Network
from .alexnet import alexnet
from .lenet import lenet
from .multibranch import trident
from .resnet import resnet18, resnet34, resnet50, resnet101, resnet152
from .vgg import vgg11, vgg13, vgg16, vgg19

_BUILDERS: Dict[str, Callable[[], Network]] = {
    "lenet": lenet,
    "alexnet": alexnet,
    "vgg11": vgg11,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    # beyond the paper's nine (extensions; not in PAPER_MODELS)
    "resnet101": resnet101,
    "resnet152": resnet152,
    "trident": trident,
}

#: evaluation order used in the paper's figures (the first nine)
PAPER_MODELS: List[str] = [
    "lenet", "alexnet", "vgg11", "vgg13", "vgg16", "vgg19",
    "resnet18", "resnet34", "resnet50",
]

#: subsets referenced in the text
VGG_MODELS = ["vgg11", "vgg13", "vgg16", "vgg19"]
RESNET_MODELS = ["resnet18", "resnet34", "resnet50"]


def available_models() -> List[str]:
    return list(_BUILDERS)


def build_model(name: str) -> Network:
    """Construct a fresh network by registry name (case-insensitive)."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[key]()


def register_model(name: str, builder: Callable[[], Network],
                   overwrite: bool = False) -> None:
    """Add a user model to the registry (used by the examples)."""
    key = name.lower()
    if key in _BUILDERS and not overwrite:
        raise KeyError(f"model {name!r} already registered")
    _BUILDERS[key] = builder
