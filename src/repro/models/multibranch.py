"""Multi-branch (3+ path) models: stress tests for the Section 5.2 search.

ResNet forks into exactly two paths; the paper's multi-path method is
stated for arbitrarily many.  These models exercise that generality: each
block splits into three parallel convolution branches of different depths
plus an identity skip, all re-joined by element-wise addition (shapes kept
equal so Add is valid — a concat-free cousin of the Inception module).
"""

from __future__ import annotations

from ..graph import Add, BatchNorm, Conv2d, Flatten, Input, Linear, Network, Pool2d, ReLU


def _branch(net: Network, prefix: str, entry: str, channels: int,
            depth: int, kernel: int) -> str:
    """A chain of ``depth`` same-width convolutions."""
    cursor = entry
    for idx in range(1, depth + 1):
        cursor = net.add(
            Conv2d(f"{prefix}_cv{idx}", channels, channels, kernel=kernel,
                   stride=1, padding=kernel // 2),
            inputs=[cursor],
        )
        cursor = net.add(BatchNorm(f"{prefix}_bn{idx}"), inputs=[cursor])
        cursor = net.add(ReLU(f"{prefix}_relu{idx}"), inputs=[cursor])
    return cursor


def trident_block(net: Network, name: str, entry: str, channels: int,
                  with_skip: bool = True) -> str:
    """Three branches (1x1, one 3x3, two 3x3) plus an optional identity."""
    b1 = _branch(net, f"{name}_a", entry, channels, depth=1, kernel=1)
    b2 = _branch(net, f"{name}_b", entry, channels, depth=1, kernel=3)
    b3 = _branch(net, f"{name}_c", entry, channels, depth=2, kernel=3)
    inputs = [b1, b2, b3] + ([entry] if with_skip else [])
    join = net.add(Add(f"{name}_add"), inputs=inputs)
    return net.add(ReLU(f"{name}_relu"), inputs=[join])


def trident(n_blocks: int = 2, channels: int = 32,
            image_size: int = 32) -> Network:
    """A small N-way multi-branch CNN for the multi-path search tests."""
    if n_blocks < 1:
        raise ValueError("need at least one block")
    net = Network(
        f"trident{n_blocks}",
        Input("input", channels=3, height=image_size, width=image_size),
    )
    cursor = net.add(Conv2d("stem", 3, channels, kernel=3, stride=1, padding=1))
    cursor = net.add(ReLU("stem_relu"), inputs=[cursor])
    size = image_size
    for block in range(1, n_blocks + 1):
        cursor = trident_block(net, f"t{block}", cursor, channels)
        cursor = net.add(Pool2d(f"pool{block}", kernel=2, stride=2),
                         inputs=[cursor])
        size //= 2
    cursor = net.add(Flatten("flatten"), inputs=[cursor])
    net.add(Linear("fc", channels * size * size, 10), inputs=[cursor])
    return net
