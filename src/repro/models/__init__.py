"""Model zoo: the nine DNNs of the paper's evaluation plus a registry."""

from .alexnet import alexnet
from .lenet import lenet
from .multibranch import trident, trident_block
from .registry import (
    PAPER_MODELS,
    RESNET_MODELS,
    VGG_MODELS,
    available_models,
    build_model,
    register_model,
)
from .resnet import resnet, resnet18, resnet34, resnet50, resnet101, resnet152
from .vgg import VGG_CONFIGS, vgg, vgg11, vgg13, vgg16, vgg19

__all__ = [
    "PAPER_MODELS",
    "RESNET_MODELS",
    "VGG_CONFIGS",
    "VGG_MODELS",
    "alexnet",
    "available_models",
    "build_model",
    "lenet",
    "register_model",
    "resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "trident",
    "trident_block",
    "vgg",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
]
