"""ResNet series (He et al., 2016): the multi-path workloads of Section 5.2.

Every residual block is an explicit fork/join in the graph IR: the main path
carries the weighted convolutions and the skip path is either an identity
(empty path) or a 1x1 projection convolution at stage transitions — exactly
the P1/P2 topology of Figure 4 in the paper.
"""

from __future__ import annotations

from ..graph import (
    Add,
    BatchNorm,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Input,
    Linear,
    Network,
    Pool2d,
    ReLU,
)

#: blocks per stage for each depth; 101/152 extend beyond the paper's set
RESNET_CONFIGS = {
    "resnet18": ("basic", (2, 2, 2, 2)),
    "resnet34": ("basic", (3, 4, 6, 3)),
    "resnet50": ("bottleneck", (3, 4, 6, 3)),
    "resnet101": ("bottleneck", (3, 4, 23, 3)),
    "resnet152": ("bottleneck", (3, 8, 36, 3)),
}

_STAGE_CHANNELS = (64, 128, 256, 512)
_BOTTLENECK_EXPANSION = 4


def _basic_block(net: Network, prefix: str, entry: str, in_ch: int, out_ch: int,
                 stride: int) -> tuple:
    """3x3 + 3x3 block; returns (exit layer name, output channels)."""
    a = net.add(Conv2d(f"{prefix}_cv1", in_ch, out_ch, kernel=3, stride=stride, padding=1),
                inputs=[entry])
    a = net.add(BatchNorm(f"{prefix}_bn1"), inputs=[a])
    a = net.add(ReLU(f"{prefix}_relu1"), inputs=[a])
    a = net.add(Conv2d(f"{prefix}_cv2", out_ch, out_ch, kernel=3, stride=1, padding=1),
                inputs=[a])
    a = net.add(BatchNorm(f"{prefix}_bn2"), inputs=[a])

    skip = entry
    if stride != 1 or in_ch != out_ch:
        skip = net.add(Conv2d(f"{prefix}_down", in_ch, out_ch, kernel=1, stride=stride,
                              padding=0), inputs=[entry])
        skip = net.add(BatchNorm(f"{prefix}_bn_down"), inputs=[skip])

    join = net.add(Add(f"{prefix}_add"), inputs=[a, skip])
    out = net.add(ReLU(f"{prefix}_relu_out"), inputs=[join])
    return out, out_ch


def _bottleneck_block(net: Network, prefix: str, entry: str, in_ch: int, mid_ch: int,
                      stride: int) -> tuple:
    """1x1 reduce, 3x3, 1x1 expand (x4) block."""
    out_ch = mid_ch * _BOTTLENECK_EXPANSION
    a = net.add(Conv2d(f"{prefix}_cv1", in_ch, mid_ch, kernel=1, stride=1, padding=0),
                inputs=[entry])
    a = net.add(BatchNorm(f"{prefix}_bn1"), inputs=[a])
    a = net.add(ReLU(f"{prefix}_relu1"), inputs=[a])
    a = net.add(Conv2d(f"{prefix}_cv2", mid_ch, mid_ch, kernel=3, stride=stride, padding=1),
                inputs=[a])
    a = net.add(BatchNorm(f"{prefix}_bn2"), inputs=[a])
    a = net.add(ReLU(f"{prefix}_relu2"), inputs=[a])
    a = net.add(Conv2d(f"{prefix}_cv3", mid_ch, out_ch, kernel=1, stride=1, padding=0),
                inputs=[a])
    a = net.add(BatchNorm(f"{prefix}_bn3"), inputs=[a])

    skip = entry
    if stride != 1 or in_ch != out_ch:
        skip = net.add(Conv2d(f"{prefix}_down", in_ch, out_ch, kernel=1, stride=stride,
                              padding=0), inputs=[entry])
        skip = net.add(BatchNorm(f"{prefix}_bn_down"), inputs=[skip])

    join = net.add(Add(f"{prefix}_add"), inputs=[a, skip])
    out = net.add(ReLU(f"{prefix}_relu_out"), inputs=[join])
    return out, out_ch


def resnet(config: str) -> Network:
    """Build one of resnet18/resnet34/resnet50."""
    if config not in RESNET_CONFIGS:
        raise ValueError(
            f"unknown ResNet config {config!r}; expected one of {sorted(RESNET_CONFIGS)}"
        )
    block_kind, blocks_per_stage = RESNET_CONFIGS[config]

    net = Network(config, Input("input", channels=3, height=224, width=224))
    cur = net.add(Conv2d("cv1", 3, 64, kernel=7, stride=2, padding=3))
    cur = net.add(BatchNorm("bn1"), inputs=[cur])
    cur = net.add(ReLU("relu1"), inputs=[cur])
    cur = net.add(Pool2d("pool1", kernel=3, stride=2, padding=1), inputs=[cur])

    in_ch = 64
    for stage_idx, (stage_ch, n_blocks) in enumerate(zip(_STAGE_CHANNELS, blocks_per_stage),
                                                     start=1):
        for block_idx in range(1, n_blocks + 1):
            stride = 2 if (stage_idx > 1 and block_idx == 1) else 1
            prefix = f"s{stage_idx}b{block_idx}"
            if block_kind == "basic":
                cur, in_ch = _basic_block(net, prefix, cur, in_ch, stage_ch, stride)
            else:
                cur, in_ch = _bottleneck_block(net, prefix, cur, in_ch, stage_ch, stride)

    cur = net.add(GlobalAvgPool("gap"), inputs=[cur])
    cur = net.add(Flatten("flatten"), inputs=[cur])
    net.add(Linear("fc", in_ch, 1000), inputs=[cur])
    return net


def resnet18() -> Network:
    return resnet("resnet18")


def resnet34() -> Network:
    return resnet("resnet34")


def resnet50() -> Network:
    return resnet("resnet50")


def resnet101() -> Network:
    return resnet("resnet101")


def resnet152() -> Network:
    return resnet("resnet152")
