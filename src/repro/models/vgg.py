"""VGG series (Simonyan & Zisserman, 2014): configurations A/B/D/E.

All convolutions are 3x3 pad 1; a 2x2/stride-2 max pool follows each channel
group; the classifier is the canonical 25088-4096-4096-1000 FC stack.  The
huge FC weights are what makes VGG the best case for Type-II/III (model)
partitioning in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..graph import Conv2d, Dropout, Flatten, Input, Linear, Network, Pool2d, ReLU

#: channel plan per VGG configuration; each inner list is one pre-pool group
VGG_CONFIGS: Dict[str, Sequence[Sequence[int]]] = {
    "vgg11": ([64], [128], [256, 256], [512, 512], [512, 512]),
    "vgg13": ([64, 64], [128, 128], [256, 256], [512, 512], [512, 512]),
    "vgg16": ([64, 64], [128, 128], [256, 256, 256], [512, 512, 512], [512, 512, 512]),
    "vgg19": (
        [64, 64],
        [128, 128],
        [256, 256, 256, 256],
        [512, 512, 512, 512],
        [512, 512, 512, 512],
    ),
}


def vgg(config: str) -> Network:
    """Build one of vgg11/vgg13/vgg16/vgg19."""
    if config not in VGG_CONFIGS:
        raise ValueError(f"unknown VGG config {config!r}; expected one of {sorted(VGG_CONFIGS)}")
    net = Network(config, Input("input", channels=3, height=224, width=224))
    in_ch = 3
    conv_idx = 0
    for group_idx, group in enumerate(VGG_CONFIGS[config], start=1):
        for out_ch in group:
            conv_idx += 1
            net.add(Conv2d(f"cv{conv_idx}", in_ch, out_ch, kernel=3, stride=1, padding=1))
            net.add(ReLU(f"relu{conv_idx}"))
            in_ch = out_ch
        net.add(Pool2d(f"pool{group_idx}", kernel=2, stride=2))
    net.add(Flatten("flatten"))
    net.add(Linear("fc1", 512 * 7 * 7, 4096))
    net.add(ReLU("relu_fc1"))
    net.add(Dropout("drop1", 0.5))
    net.add(Linear("fc2", 4096, 4096))
    net.add(ReLU("relu_fc2"))
    net.add(Dropout("drop2", 0.5))
    net.add(Linear("fc3", 4096, 1000))
    return net


def vgg11() -> Network:
    return vgg("vgg11")


def vgg13() -> Network:
    return vgg("vgg13")


def vgg16() -> Network:
    return vgg("vgg16")


def vgg19() -> Network:
    return vgg("vgg19")
