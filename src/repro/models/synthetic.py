"""Synthetic workload generator: random DNNs for fuzzing and sweeps.

The benchmark harness needs workloads beyond the nine fixed models — both
to fuzz the planner (random graphs exercise corner cases the zoo never
hits) and to sweep structural parameters (depth, width, FC/CONV mix,
residual density) independently.  Generators are deterministic in their
seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..graph import (
    Add,
    BatchNorm,
    Conv2d,
    Flatten,
    Input,
    Linear,
    Network,
    Pool2d,
    ReLU,
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the random generator."""

    n_conv_stages: int = 3          # conv stages (each may pool)
    convs_per_stage: int = 2
    n_fc_layers: int = 2
    base_channels: int = 16
    image_size: int = 32
    residual_probability: float = 0.0   # chance a stage becomes a residual block
    classes: int = 10

    def __post_init__(self) -> None:
        if self.n_conv_stages < 0 or self.n_fc_layers < 1:
            raise ValueError("need at least one FC layer and >= 0 conv stages")
        if not 0.0 <= self.residual_probability <= 1.0:
            raise ValueError("residual_probability must be in [0, 1]")
        if self.image_size < 2 ** max(self.n_conv_stages, 1):
            raise ValueError("image too small for the requested pooling depth")


def random_network(seed: int, config: Optional[SyntheticConfig] = None) -> Network:
    """Generate a random CNN+FC network; same seed, same network."""
    config = config or SyntheticConfig()
    rng = random.Random(seed)
    net = Network(
        f"synthetic-{seed}",
        Input("input", channels=3, height=config.image_size,
              width=config.image_size),
    )

    channels = 3
    size = config.image_size
    cursor = "input"
    conv_idx = 0

    for stage in range(config.n_conv_stages):
        out_channels = config.base_channels * (2 ** min(stage, 3))
        # one transition conv brings the channel count to the stage width
        conv_idx += 1
        kernel = rng.choice([1, 3, 5])
        cursor = net.add(
            Conv2d(f"cv{conv_idx}", channels, out_channels, kernel=kernel,
                   stride=1, padding=kernel // 2),
            inputs=[cursor],
        )
        channels = out_channels
        cursor = net.add(ReLU(f"relu{conv_idx}"), inputs=[cursor])

        # the stage body runs at constant width; optionally a residual block
        make_residual = rng.random() < config.residual_probability
        entry = cursor
        for _ in range(config.convs_per_stage - 1):
            conv_idx += 1
            kernel = rng.choice([1, 3, 5])
            cursor = net.add(
                Conv2d(f"cv{conv_idx}", channels, channels, kernel=kernel,
                       stride=1, padding=kernel // 2),
                inputs=[cursor],
            )
            cursor = net.add(BatchNorm(f"bn{conv_idx}"), inputs=[cursor])
            cursor = net.add(ReLU(f"relu{conv_idx}"), inputs=[cursor])
        if make_residual and cursor != entry:
            cursor = net.add(Add(f"add{stage}"), inputs=[cursor, entry])
            cursor = net.add(ReLU(f"relu_add{stage}"), inputs=[cursor])
        cursor = net.add(Pool2d(f"pool{stage}", kernel=2, stride=2),
                         inputs=[cursor])
        size //= 2

    cursor = net.add(Flatten("flatten"), inputs=[cursor])
    features = channels * size * size
    for f in range(1, config.n_fc_layers):
        width = rng.choice([64, 128, 256])
        cursor = net.add(Linear(f"fc{f}", features, width), inputs=[cursor])
        cursor = net.add(ReLU(f"relu_fc{f}"), inputs=[cursor])
        features = width
    net.add(Linear(f"fc{config.n_fc_layers}", features, config.classes),
            inputs=[cursor])
    return net


def random_chain_widths(seed: int, min_layers: int = 2, max_layers: int = 12,
                        min_width: int = 2, max_width: int = 4096) -> List[int]:
    """Random FC-chain widths for planner fuzzing (log-uniform widths)."""
    rng = random.Random(seed)
    n = rng.randint(min_layers, max_layers)
    widths = []
    for _ in range(n + 1):
        exponent = rng.uniform(0, 1)
        widths.append(
            int(min_width * (max_width / min_width) ** exponent)
        )
    return [max(w, min_width) for w in widths]
