"""Baseline schemes: DP, OWT and HyPar, plus a scheme registry."""

from typing import List, Optional

from ..core.hierarchy import PartitionScheme
from ..core.planner import AccParScheme
from ..hardware.profile import HardwareProfile
from .data_parallel import DataParallelScheme, FixedTypeScheme
from .hypar import HyParScheme
from .owt import OwtScheme


def get_scheme(name: str, backend: Optional[str] = None,
               profile: Optional[HardwareProfile] = None) -> PartitionScheme:
    """Build a scheme by its paper name: dp / owt / hypar / accpar.

    ``backend`` overrides the scheme's search backend (a name from
    :func:`repro.plan.available_backends`); ``None`` keeps each scheme's
    default (the exact DP).  ``profile`` prices the scheme's cost models
    with calibrated effective rates instead of peak analytic ones.
    """
    key = name.lower()
    if key == "dp":
        scheme: PartitionScheme = DataParallelScheme(profile=profile)
    elif key == "owt":
        scheme = OwtScheme(profile=profile)
    elif key == "hypar":
        scheme = HyParScheme(profile=profile)
    elif key == "accpar":
        scheme = AccParScheme(profile=profile)
    else:
        raise KeyError(f"unknown scheme {name!r}; expected dp/owt/hypar/accpar")
    if backend is not None:
        scheme.backend = backend
    return scheme


#: the order every figure of the paper uses
SCHEME_ORDER: List[str] = ["dp", "owt", "hypar", "accpar"]

__all__ = [
    "DataParallelScheme",
    "FixedTypeScheme",
    "HyParScheme",
    "OwtScheme",
    "SCHEME_ORDER",
    "get_scheme",
]
