"""Baseline schemes: DP, OWT and HyPar, plus a scheme registry."""

from typing import List, Optional

from ..core.hierarchy import PartitionScheme
from ..core.planner import AccParScheme
from .data_parallel import DataParallelScheme, FixedTypeScheme
from .hypar import HyParScheme
from .owt import OwtScheme


def get_scheme(name: str, backend: Optional[str] = None) -> PartitionScheme:
    """Build a scheme by its paper name: dp / owt / hypar / accpar.

    ``backend`` overrides the scheme's search backend (a name from
    :func:`repro.plan.available_backends`); ``None`` keeps each scheme's
    default (the exact DP).
    """
    key = name.lower()
    if key == "dp":
        return DataParallelScheme() if backend is None else DataParallelScheme(backend)
    if key == "owt":
        return OwtScheme() if backend is None else OwtScheme(backend)
    if key == "hypar":
        return HyParScheme() if backend is None else HyParScheme(backend)
    if key == "accpar":
        scheme = AccParScheme()
        if backend is not None:
            scheme.backend = backend
        return scheme
    raise KeyError(f"unknown scheme {name!r}; expected dp/owt/hypar/accpar")


#: the order every figure of the paper uses
SCHEME_ORDER: List[str] = ["dp", "owt", "hypar", "accpar"]

__all__ = [
    "DataParallelScheme",
    "FixedTypeScheme",
    "HyParScheme",
    "OwtScheme",
    "SCHEME_ORDER",
    "get_scheme",
]
