"""Baseline schemes: DP, OWT and HyPar, plus a scheme registry."""

from typing import Dict, List

from ..core.hierarchy import PartitionScheme
from ..core.planner import AccParScheme
from .data_parallel import DataParallelScheme, FixedTypeScheme
from .hypar import HyParScheme
from .owt import OwtScheme


def get_scheme(name: str) -> PartitionScheme:
    """Build a scheme by its paper name: dp / owt / hypar / accpar."""
    key = name.lower()
    if key == "dp":
        return DataParallelScheme()
    if key == "owt":
        return OwtScheme()
    if key == "hypar":
        return HyParScheme()
    if key == "accpar":
        return AccParScheme()
    raise KeyError(f"unknown scheme {name!r}; expected dp/owt/hypar/accpar")


#: the order every figure of the paper uses
SCHEME_ORDER: List[str] = ["dp", "owt", "hypar", "accpar"]

__all__ = [
    "DataParallelScheme",
    "FixedTypeScheme",
    "HyParScheme",
    "OwtScheme",
    "SCHEME_ORDER",
    "get_scheme",
]
