"""HyPar (Song et al., HPCA 2019) — the principled-but-incomplete baseline.

Re-implemented from its description in the AccPar paper (Sections 1, 3.5):

* searches only the two OWT parallelisms — data (Type-I) and model
  (Type-II); Type-III and five of the nine inter-layer patterns are missed;
* optimizes *communication amount* as a proxy for performance (no
  computation term, no bandwidth heterogeneity);
* always partitions tensors equally (ratio 1/2), so it cannot exploit
  heterogeneous compute densities;
* handles only linear structures — multi-path networks are linearized in
  topological order before the search (and the resulting plan is then
  evaluated on the true graph by the simulator).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.cost_model import PairCostModel
from ..core.counters import planner_counters
from ..core.stages import ShardedStage, flatten_to_chain
from ..core.types import HYPAR_TYPES
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.profile import HardwareProfile
from ..plan.backends import get_backend
from ..plan.ir import LevelPlan


class HyParScheme:
    """Layer-wise DP over {Type-I, Type-II} minimizing communication volume.

    The comm-volume proxy counts raw bytes, so a calibrated ``profile``
    cannot change HyPar's objective — it is accepted (and kept on the
    scheme so the planner can validate and order the pairing tree with it)
    but the search itself stays profile-independent by design.
    """

    def __init__(self, backend: str = "dp",
                 profile: Optional[HardwareProfile] = None) -> None:
        self.name = "hypar"
        self.backend = backend
        self.profile = profile

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        chain = flatten_to_chain(list(stages))
        model = PairCostModel(party_i, party_j, dtype_bytes, ratio_mode="comm-volume",
                              profile=self.profile)
        result = get_backend(self.backend).search(chain, model, HYPAR_TYPES)
        planner_counters.merge(model.stats.as_dict())
        return result.to_level_plan(self.name)
