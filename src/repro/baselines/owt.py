""""One Weird Trick" (Krizhevsky, 2014) — the empirical baseline.

OWT configures CONV layers with data parallelism and FC layers with model
parallelism.  In the partition algebra of Section 3 these are Type-I and
Type-II respectively; ratios are equal.  The paper stresses that OWT is a
*static* configuration: it never adapts to the model or the hardware
(Table 8).
"""

from __future__ import annotations

from typing import Optional

from ..core.types import PartitionType
from ..hardware.profile import HardwareProfile
from .data_parallel import FixedTypeScheme


class OwtScheme(FixedTypeScheme):
    """CONV → Type-I (data parallel); FC → Type-II (model parallel)."""

    def __init__(self, backend: str = "dp",
                 profile: Optional[HardwareProfile] = None) -> None:
        super().__init__(
            "owt",
            lambda w: PartitionType.TYPE_I if w.base.is_conv else PartitionType.TYPE_II,
            backend=backend,
            profile=profile,
        )
