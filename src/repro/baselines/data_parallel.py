"""Data parallelism (DP) — the paper's normalization baseline (Section 6.1).

Every accelerator keeps a full model replica and processes a slice of the
mini-batch: all layers are Type-I with equal ratios at every hierarchy
level.  The only communication is the per-layer gradient partial-sum
exchange (Table 4, Type-I) — the classic all-reduce.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.cost_model import PairCostModel
from ..core.counters import planner_counters
from ..core.stages import ShardedStage
from ..core.types import ALL_TYPES, PartitionType, ShardedWorkload
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.profile import HardwareProfile
from ..plan.backends import get_backend
from ..plan.ir import LevelPlan


class FixedTypeScheme:
    """A static per-layer-kind policy with equal (1/2) partitioning ratios.

    ``type_fn`` maps a workload to its pinned partition type; the search then
    only chooses join-alignment states in multi-path regions.  Equal ratios
    mean heterogeneous pairs are gated by the slower party — the idle time
    Section 6.2 attributes to OWT/HyPar/DP.  The pinning is expressed as a
    per-layer ``space_fn``, so it composes with any registered backend.
    The types are static but the *costs* still respect a calibrated
    ``profile``, so baseline-vs-AccPar comparisons stay apples-to-apples.
    """

    def __init__(
        self,
        name: str,
        type_fn: Callable[[ShardedWorkload], PartitionType],
        backend: str = "dp",
        profile: Optional[HardwareProfile] = None,
    ):
        self.name = name
        self._type_fn = type_fn
        self.backend = backend
        self.profile = profile

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        model = PairCostModel(party_i, party_j, dtype_bytes, ratio_mode="equal",
                              profile=self.profile)
        result = get_backend(self.backend).search(
            list(stages),
            model,
            ALL_TYPES,
            space_fn=lambda w: (self._type_fn(w),),
        )
        planner_counters.merge(model.stats.as_dict())
        return result.to_level_plan(self.name)


class DataParallelScheme(FixedTypeScheme):
    """All layers Type-I (batch partitioning), ratio 1/2."""

    def __init__(self, backend: str = "dp",
                 profile: Optional[HardwareProfile] = None) -> None:
        super().__init__("dp", lambda w: PartitionType.TYPE_I, backend=backend,
                         profile=profile)
