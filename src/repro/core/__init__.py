"""AccPar core: partition algebra, cost model, search and planners."""

from .brute_force import brute_force_chain
from .greedy import greedy_chain
from .cost_model import PairCostModel, StepDecision, inter_layer_elements
from .dp_search import SearchResult, search_stages
from .hierarchy import PartitionScheme, collect_level_plans, plan_tree, stages_key
from .planner import AccParPlanner, AccParScheme, GreedyScheme, PlannedExecution, Planner
from .ratio import compute_proportional_ratio, solve_balanced_ratio
from .quantize import (
    QuantizationError,
    QuantizationReport,
    quantize_plan,
    quantize_ratio,
)
from .serialize import (
    PlanFormatError,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from .verify import PlanVerificationError, verify_planned
from .stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    ShardedStage,
    first_workload,
    flatten_to_chain,
    iter_sharded_workloads,
    last_workload,
    shard_stages,
    to_sharded_stages,
)
from ..plan.ir import HierarchicalPlan, LayerPartition, LevelPlan
from .types import (
    ALL_TYPES,
    HYPAR_TYPES,
    PartitionType,
    Phase,
    PSUM_PHASE,
    REPLICATED_TENSOR,
    PARTITIONED_DIM,
    ShardedWorkload,
)

__all__ = [
    "QuantizationError",
    "QuantizationReport",
    "quantize_plan",
    "quantize_ratio",
    "PlanFormatError",
    "PlanVerificationError",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
    "verify_planned",
    "ALL_TYPES",
    "AccParPlanner",
    "AccParScheme",
    "GreedyScheme",
    "HYPAR_TYPES",
    "HierarchicalPlan",
    "LayerPartition",
    "LevelPlan",
    "PARTITIONED_DIM",
    "PSUM_PHASE",
    "PairCostModel",
    "PartitionScheme",
    "PartitionType",
    "Phase",
    "PlannedExecution",
    "Planner",
    "REPLICATED_TENSOR",
    "SearchResult",
    "ShardedLayerStage",
    "ShardedParallelStage",
    "ShardedStage",
    "ShardedWorkload",
    "StepDecision",
    "brute_force_chain",
    "greedy_chain",
    "collect_level_plans",
    "compute_proportional_ratio",
    "first_workload",
    "flatten_to_chain",
    "inter_layer_elements",
    "iter_sharded_workloads",
    "last_workload",
    "plan_tree",
    "search_stages",
    "shard_stages",
    "solve_balanced_ratio",
    "stages_key",
    "to_sharded_stages",
]
