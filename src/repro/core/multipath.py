"""Multi-path partitioning (Section 5.2, Figure 4).

A fork/join region is collapsed into macro-transitions for the outer chain
DP.  Following the paper: for each partition state ``tt`` of the layer
feeding the fork and each state ``s`` governing the tensor entering the
layer after the join, run the individual layer-wise DP on *each* path
between the two states, pick each path's cheapest internal configuration,
and sum the paths (the two groups execute all paths, so their costs add).

Conventions:

* a path's first layer pays the normal Table 5 transition from ``tt``;
* a path's last layer pays a re-alignment of its output tensor to state
  ``s`` (zero when it already exits in ``s``);
* an empty path (identity skip) pays only the re-alignment of the skip
  tensor from ``tt`` to ``s``;
* after the stage the boundary tensor behaves like the output of a weighted
  layer in state ``s``, so the next stage's Eq. 9 step applies unchanged —
  which is what lets consecutive residual blocks chain.

Besides the :class:`~repro.plan.ir.JoinAlignment` entry, the
macro-transition records one :class:`~repro.plan.ir.PathExit` entry per
path — the partition state the path's output tensor is in *before*
re-alignment to the join state — so the simulator replays exactly the
re-alignments the search costed rather than re-deriving them from the
path's last layer.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..obs.tracing import tracer
from ..plan.ir import JoinAlignment, PathExit, PlanEntry
from .cost_model import PairCostModel
from .stages import ShardedParallelStage, first_workload, last_workload
from .types import PartitionType


def alignment_cost(
    model: PairCostModel,
    boundary_fm_elements: float,
    from_state: "PartitionType | None",
    to_state: PartitionType,
) -> float:
    """Cost of re-aligning a boundary tensor between two partition states.

    Zero when the states already agree or the source state is free (network
    entry); otherwise the Table 5 transfer for the tensor.
    """
    if from_state is None or from_state is to_state:
        return 0.0
    return model.boundary_step(boundary_fm_elements, from_state, to_state).cost


def parallel_stage_transitions(
    stage: ShardedParallelStage,
    model: PairCostModel,
    space: Sequence[PartitionType],
    in_states: Sequence["PartitionType | None"],
    space_fn=None,
) -> Dict[Tuple["PartitionType | None", PartitionType], "TransitionInfo"]:
    """Macro-transition table for one fork/join region.

    For every ``(tt, s)`` the cost is the sum over paths of that path's
    cheapest DP cost from entry state ``tt`` to exit alignment ``s``.
    """
    from .dp_search import TransitionInfo, dp_over_stages, improves  # cycle-free at runtime

    # the fork tensor: input feature map of the first weighted layer in any
    # non-empty path (all paths consume the same tensor)
    fork_elements = None
    for path in stage.paths:
        if path:
            fork_elements = first_workload(path).a_input_fm()
            break
    if fork_elements is None:
        raise ValueError(f"parallel stage {stage.name!r} has no weighted layers")

    # local alignment-cost memo: (elements, from, to) hits skip the
    # model.boundary_step call chain entirely inside this stage's loops
    align_cache: Dict[Tuple[float, "PartitionType | None", PartitionType], float] = {}

    def align(elements: float, frm: "PartitionType | None", to: PartitionType) -> float:
        key = (elements, frm, to)
        cost = align_cache.get(key)
        if cost is None:
            cost = alignment_cost(model, elements, frm, to)
            align_cache[key] = cost
        return cost

    # the alignment entries all carry the nominal ratio, so the handful of
    # distinct JoinAlignment / PathExit values can be shared across the
    # (tt, s) loop instead of constructed per combination
    nominal = model.nominal_alpha()
    join_cache: Dict[PartitionType, JoinAlignment] = {}
    exit_cache: Dict[Tuple[int, PartitionType], PathExit] = {}

    def join_entry(state: PartitionType) -> JoinAlignment:
        entry = join_cache.get(state)
        if entry is None:
            entry = JoinAlignment(stage.name, state, nominal)
            join_cache[state] = entry
        return entry

    def exit_entry(index: int, state: PartitionType) -> PathExit:
        key = (index, state)
        entry = exit_cache.get(key)
        if entry is None:
            entry = PathExit(stage.name, index, state, nominal)
            exit_cache[key] = entry
        return entry

    transitions: Dict[Tuple["PartitionType | None", PartitionType], TransitionInfo] = {}
    for tt in in_states:
        # run each non-empty path's DP once per entry state; reuse across s
        path_exits = []
        for path_index, path in enumerate(stage.paths):
            if path:
                model.stats.multipath_path_dp_runs += 1
                if tracer.enabled:
                    with tracer.span("multipath.path_dp", category="dp",
                                     stage=stage.name, path=path_index,
                                     entry=str(tt)):
                        exits = dp_over_stages(path, model, space,
                                               entry={tt: 0.0},
                                               space_fn=space_fn)
                else:
                    exits = dp_over_stages(path, model, space,
                                           entry={tt: 0.0},
                                           space_fn=space_fn)
                path_exits.append((path, exits))
            else:
                path_exits.append((path, None))

        for s in space:
            total = 0.0
            entries: Tuple[PlanEntry, ...] = ()
            for index, (path, exits) in enumerate(path_exits):
                if exits is None:
                    # identity skip: re-align the fork tensor itself, which
                    # is still in the entry state tt
                    total += align(fork_elements, tt, s)
                    chosen_exit = tt
                else:
                    out_elements = last_workload(path).a_output_fm()
                    best_cost = None
                    best_info = None
                    best_exit = None
                    for exit_state, (cost, info) in exits.items():
                        aligned = cost + align(out_elements, exit_state, s)
                        if best_cost is None or improves(aligned, best_cost):
                            best_cost = aligned
                            best_info = info
                            best_exit = exit_state
                    assert best_cost is not None and best_info is not None
                    total += best_cost
                    entries += best_info.entries
                    chosen_exit = best_exit
                # record the path's pre-alignment exit state (None only for
                # a skip path at the free network entry: nothing to align)
                if chosen_exit is not None:
                    entries += (exit_entry(index, chosen_exit),)
            # record the chosen join alignment so the simulator can replay it
            entries += (join_entry(s),)
            transitions[(tt, s)] = TransitionInfo(cost=total, entries=entries)
    return transitions
