"""Layer-wise dynamic-programming search (Section 5.1, Eq. 9).

The DP runs over the sharded series-parallel stage list of
:mod:`repro.core.stages`.  The DP state is the partition type governing the
boundary tensor after a stage; Eq. 9's step cost is delegated to
:class:`~repro.core.cost_model.PairCostModel`, so the same search skeleton
serves AccPar (balanced ratios, full space), HyPar (communication volume,
{Type-I, Type-II}) and restricted ablations.

Multi-path stages (Figure 4) are folded into single macro-transitions by
:mod:`repro.core.multipath`; the chain DP composes them transparently, which
also makes back-to-back residual blocks (ResNet) work without special cases.

Complexity is O(N · |T|²) for N weighted layers — the paper's reduction from
the O(3^N) brute force (validated against :mod:`repro.core.brute_force`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, NamedTuple, Optional, Sequence, Tuple

from ..obs.tracing import tracer
from ..plan.ir import LayerAssignment, PlanEntry, SearchResult
from .cost_model import PairCostModel, transition_family
from .stages import ShardedLayerStage, ShardedParallelStage, ShardedStage
from .tiebreak import COST_REL_TOL, improves
from .types import ALL_TYPES, PartitionType, ShardedWorkload

__all__ = [
    "COST_REL_TOL",
    "improves",
    "TransitionInfo",
    "layer_stage_transitions",
    "dp_over_stages",
    "search_stages",
]

#: optional per-layer restriction of the searchable types (used by the fixed
#: baselines: data parallelism pins Type-I everywhere, OWT pins by layer kind)
SpaceFn = Callable[[ShardedWorkload], Sequence[PartitionType]]

#: DP states: a partition type, or None for the free entry boundary
State = Optional[PartitionType]


class TransitionInfo(NamedTuple):
    """Cost and typed plan entries of crossing one stage between two states.

    A NamedTuple: the search constructs thousands per plan and tuple
    construction is several times cheaper than a frozen dataclass.
    """

    cost: float
    entries: Tuple[PlanEntry, ...] = ()


@dataclass(frozen=True)
class _BackNode:
    """Parent-pointer backtracking node: one stage's decisions on a DP path.

    The frontier used to accumulate full entry tuples per state, which
    re-copies every prefix at every stage — O(N²) tuple concatenation over a
    chain.  Instead each frontier entry now points at its predecessor's node
    and the optimal paths are reconstructed once at the end, in O(N) per
    surviving exit state.
    """

    entries: Tuple[PlanEntry, ...]
    parent: Optional["_BackNode"]

    def backtrack(self) -> Tuple[PlanEntry, ...]:
        """Concatenate the per-stage decisions from entry to this node."""
        groups = []
        node: Optional[_BackNode] = self
        while node is not None:
            if node.entries:
                groups.append(node.entries)
            node = node.parent
        groups.reverse()
        out: list = []
        for group in groups:
            out.extend(group)
        return tuple(out)


def layer_stage_transitions(
    stage: ShardedLayerStage,
    model: PairCostModel,
    space: Sequence[PartitionType],
    in_states: Sequence[State],
    space_fn: Optional[SpaceFn] = None,
) -> Dict[Tuple[State, PartitionType], TransitionInfo]:
    """Eq. 9 step costs for one weighted layer, all (tt, t) combinations."""
    layer_space = space_fn(stage.workload) if space_fn is not None else space
    transitions: Dict[Tuple[State, PartitionType], TransitionInfo] = {}
    sw = stage.workload
    name = stage.name
    if model.memoize:
        # a step decision depends on the predecessor only through its
        # Table 5 family (the model's own cache relies on the same fact);
        # cost each (family, t) combination once and fan the shared
        # TransitionInfo out to every (tt, t) in the family
        by_family: Dict[Tuple[str, PartitionType], TransitionInfo] = {}
        for tt in in_states:
            for t in layer_space:
                fam = transition_family(tt, t)
                fam_key = (fam, t)
                info = by_family.get(fam_key)
                if info is None:
                    decision = model.step(sw, tt, t, fam)
                    info = TransitionInfo(
                        cost=decision.cost,
                        entries=(LayerAssignment(name, t, decision.alpha),),
                    )
                    by_family[fam_key] = info
                transitions[(tt, t)] = info
        return transitions
    for tt in in_states:
        for t in layer_space:
            decision = model.step(sw, tt, t)
            transitions[(tt, t)] = TransitionInfo(
                cost=decision.cost,
                entries=(LayerAssignment(name, t, decision.alpha),),
            )
    return transitions


def _advance_frontier(
    stage: ShardedStage,
    frontier: Dict[State, Tuple[float, Optional[_BackNode]]],
    model: PairCostModel,
    space: Sequence[PartitionType],
    space_fn: Optional[SpaceFn],
    parallel_transitions,
) -> Dict[State, Tuple[float, Optional[_BackNode]]]:
    """One DP step: cross ``frontier`` over ``stage``'s transition table."""
    in_states = list(frontier)
    if isinstance(stage, ShardedLayerStage):
        transitions = layer_stage_transitions(stage, model, space, in_states, space_fn)
    elif isinstance(stage, ShardedParallelStage):
        transitions = parallel_transitions(stage, model, space, in_states, space_fn)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown stage kind {type(stage).__name__}")

    new_frontier: Dict[State, Tuple[float, Optional[_BackNode]]] = {}
    for (tt, t), info in transitions.items():
        base_cost, base_node = frontier[tt]
        total = base_cost + info.cost
        incumbent = new_frontier.get(t)
        # one shared tie-break rule (core.tiebreak) across every search
        # variant, so the scalar, greedy and vectorized kernels can't drift
        if incumbent is None or improves(total, incumbent[0]):
            new_frontier[t] = (total, _BackNode(info.entries, base_node))
    return new_frontier


def dp_over_stages(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType],
    entry: Dict[State, float],
    space_fn: Optional[SpaceFn] = None,
) -> Dict[State, Tuple[float, TransitionInfo]]:
    """Min-plus DP across a stage list.

    ``entry`` maps boundary states before the first stage to their initial
    costs (``None`` = free boundary, used for the network input).  Returns,
    per reachable exit state, the minimal total cost and the accumulated
    layer assignments along the optimal path.

    The frontier carries parent-pointer :class:`_BackNode` chains instead of
    materialized assignment tuples; the optimal path per exit state is
    backtracked exactly once after the last stage, keeping the whole search
    linear in the number of stages.
    """
    from .multipath import parallel_stage_transitions  # local import: cycle-free

    if not entry:
        raise ValueError("entry state set must be non-empty")

    frontier: Dict[State, Tuple[float, Optional[_BackNode]]] = {
        s: (c, None) for s, c in entry.items()
    }

    # hoisted out of the loop: the guard on the raw attribute keeps the
    # disabled path allocation-free (asserted by the tracer tests), and one
    # search never straddles an enable/disable toggle
    traced = tracer.enabled
    for stage in stages:
        if traced:
            with tracer.span("dp.stage", category="dp", stage=stage.name,
                             states=len(frontier)):
                frontier = _advance_frontier(stage, frontier, model, space,
                                             space_fn,
                                             parallel_stage_transitions)
        else:
            frontier = _advance_frontier(stage, frontier, model, space,
                                         space_fn, parallel_stage_transitions)

    return {
        s: (
            cost,
            TransitionInfo(
                cost=cost,
                entries=node.backtrack() if node is not None else (),
            ),
        )
        for s, (cost, node) in frontier.items()
    }


def search_stages(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
    entry: Optional[Dict[State, float]] = None,
    space_fn: Optional[SpaceFn] = None,
) -> SearchResult:
    """Find the minimum-cost per-layer assignment for one hierarchy level.

    The entry boundary defaults to free (``c(L_0, t) = 0``, Section 5.1: the
    input tensor may start in whichever partitioning the first layer
    prefers).
    """
    if not space:
        raise ValueError("partition-type space must be non-empty")
    if entry is None:
        entry = {None: 0.0}
    if not stages:
        return SearchResult(entries=(), cost=0.0, exit_state=None)

    with tracer.span("dp.search", category="dp", stages=len(stages),
                     space=len(space)) as span:
        exits = dp_over_stages(stages, model, space, entry, space_fn)
        best_state = None
        best_cost = None
        for state, (cost, _) in exits.items():
            if best_cost is None or improves(cost, best_cost):
                best_state, best_cost = state, cost
        best_cost, info = exits[best_state]
        span.set("cost", best_cost)
    return SearchResult(
        entries=info.entries,
        cost=best_cost,
        exit_state=best_state,
    )
