"""Layer-wise dynamic-programming search (Section 5.1, Eq. 9).

The DP runs over the sharded series-parallel stage list of
:mod:`repro.core.stages`.  The DP state is the partition type governing the
boundary tensor after a stage; Eq. 9's step cost is delegated to
:class:`~repro.core.cost_model.PairCostModel`, so the same search skeleton
serves AccPar (balanced ratios, full space), HyPar (communication volume,
{Type-I, Type-II}) and restricted ablations.

Multi-path stages (Figure 4) are folded into single macro-transitions by
:mod:`repro.core.multipath`; the chain DP composes them transparently, which
also makes back-to-back residual blocks (ResNet) work without special cases.

Complexity is O(N · |T|²) for N weighted layers — the paper's reduction from
the O(3^N) brute force (validated against :mod:`repro.core.brute_force`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .cost_model import PairCostModel
from .stages import ShardedLayerStage, ShardedParallelStage, ShardedStage
from .types import ALL_TYPES, LayerPartition, PartitionType, ShardedWorkload

#: optional per-layer restriction of the searchable types (used by the fixed
#: baselines: data parallelism pins Type-I everywhere, OWT pins by layer kind)
SpaceFn = Callable[[ShardedWorkload], Sequence[PartitionType]]

#: DP states: a partition type, or None for the free entry boundary
State = Optional[PartitionType]


@dataclass(frozen=True)
class TransitionInfo:
    """Cost and layer decisions of crossing one stage between two states."""

    cost: float
    assignments: Tuple[Tuple[str, LayerPartition], ...] = ()

    def merged_with(self, other: "TransitionInfo") -> "TransitionInfo":
        return TransitionInfo(
            cost=self.cost + other.cost,
            assignments=self.assignments + other.assignments,
        )


@dataclass
class SearchResult:
    """Outcome of one level's search."""

    assignments: Dict[str, LayerPartition]
    cost: float
    exit_state: Optional[PartitionType]

    def types(self) -> Dict[str, PartitionType]:
        return {name: lp.ptype for name, lp in self.assignments.items()}


def layer_stage_transitions(
    stage: ShardedLayerStage,
    model: PairCostModel,
    space: Sequence[PartitionType],
    in_states: Sequence[State],
    space_fn: Optional[SpaceFn] = None,
) -> Dict[Tuple[State, PartitionType], TransitionInfo]:
    """Eq. 9 step costs for one weighted layer, all (tt, t) combinations."""
    layer_space = space_fn(stage.workload) if space_fn is not None else space
    transitions: Dict[Tuple[State, PartitionType], TransitionInfo] = {}
    for tt in in_states:
        for t in layer_space:
            decision = model.step(stage.workload, tt, t)
            transitions[(tt, t)] = TransitionInfo(
                cost=decision.cost,
                assignments=((stage.name, LayerPartition(t, decision.alpha)),),
            )
    return transitions


def dp_over_stages(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType],
    entry: Dict[State, float],
    space_fn: Optional[SpaceFn] = None,
) -> Dict[State, Tuple[float, TransitionInfo]]:
    """Min-plus DP across a stage list.

    ``entry`` maps boundary states before the first stage to their initial
    costs (``None`` = free boundary, used for the network input).  Returns,
    per reachable exit state, the minimal total cost and the accumulated
    layer assignments along the optimal path.
    """
    from .multipath import parallel_stage_transitions  # local import: cycle-free

    if not entry:
        raise ValueError("entry state set must be non-empty")

    frontier: Dict[State, Tuple[float, TransitionInfo]] = {
        s: (c, TransitionInfo(0.0)) for s, c in entry.items()
    }

    for stage in stages:
        in_states = list(frontier)
        if isinstance(stage, ShardedLayerStage):
            transitions = layer_stage_transitions(stage, model, space, in_states, space_fn)
        elif isinstance(stage, ShardedParallelStage):
            transitions = parallel_stage_transitions(stage, model, space, in_states, space_fn)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage kind {type(stage).__name__}")

        new_frontier: Dict[State, Tuple[float, TransitionInfo]] = {}
        for (tt, t), info in transitions.items():
            base_cost, base_info = frontier[tt]
            total = base_cost + info.cost
            if t not in new_frontier or total < new_frontier[t][0]:
                new_frontier[t] = (total, base_info.merged_with(info))
        frontier = new_frontier

    return frontier


def search_stages(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
    entry: Optional[Dict[State, float]] = None,
    space_fn: Optional[SpaceFn] = None,
) -> SearchResult:
    """Find the minimum-cost per-layer assignment for one hierarchy level.

    The entry boundary defaults to free (``c(L_0, t) = 0``, Section 5.1: the
    input tensor may start in whichever partitioning the first layer
    prefers).
    """
    if not space:
        raise ValueError("partition-type space must be non-empty")
    if entry is None:
        entry = {None: 0.0}
    if not stages:
        return SearchResult(assignments={}, cost=0.0, exit_state=None)

    exits = dp_over_stages(stages, model, space, entry, space_fn)
    best_state = min(exits, key=lambda s: exits[s][0])
    best_cost, info = exits[best_state]
    return SearchResult(
        assignments=dict(info.assignments),
        cost=best_cost,
        exit_state=best_state,
    )
