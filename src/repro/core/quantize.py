"""Ratio quantization: snap Eq. 10's real-valued ratios to integer splits.

The cost model and search work with real α for exact composition across
hierarchy levels, but a deployed plan must slice actual tensors: a batch of
512 cannot take α = 0.70003.  This module rounds every ratio in a plan to
the nearest feasible integer split of the dimension its type partitions —
accounting for the shrinking dimensions down the pairing tree — and reports
the cost drift the rounding introduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..plan.ir import (
    HierarchicalPlan,
    LayerAssignment,
    LevelPlan,
    PlanEntry,
)
from .planner import PlannedExecution
from .stages import ShardedStage, iter_sharded_workloads, shard_stages
from .types import PartitionType, ShardedWorkload


class QuantizationError(ValueError):
    """Raised when a dimension is too small to honor the plan's splits."""


def partitioned_extent(sw: ShardedWorkload, ptype: PartitionType) -> float:
    """Effective length of the dimension ``ptype`` partitions."""
    if ptype is PartitionType.TYPE_I:
        return sw.batch
    if ptype is PartitionType.TYPE_II:
        return sw.d_in
    return sw.d_out


def quantize_ratio(ratio: float, extent: float) -> float:
    """The realizable ratio closest to ``ratio`` on an ``extent``-long axis.

    The axis is split at an integer index in [1, floor(extent) - 1]; both
    sides must be non-empty.
    """
    whole = int(math.floor(extent + 1e-9))
    if whole < 2:
        raise QuantizationError(
            f"axis of effective length {extent:.3f} cannot be split two ways"
        )
    split = int(round(ratio * whole))
    split = min(max(split, 1), whole - 1)
    return split / whole


@dataclass
class QuantizationReport:
    """Outcome of quantizing one plan.

    ``unrealizable`` counts (level, layer) decisions whose partitioned axis
    had shrunk below two effective elements — a real deployment must assign
    such a shard wholly to one device (or cap the hierarchy depth for that
    layer); their real-valued ratios are kept so the rest of the plan still
    quantizes.
    """

    max_ratio_shift: float
    n_ratios: int
    levels_quantized: int
    unrealizable: int = 0


def quantize_plan(
    planned: PlannedExecution,
    strict: bool = False,
) -> Tuple[PlannedExecution, QuantizationReport]:
    """A copy of ``planned`` with every ratio snapped to an integer split.

    Walks the plan tree top-down with the *quantized* shards, so each
    level's rounding sees the true (integer) dimensions its ancestors left
    behind.  Join-alignment entries keep their nominal ratios (they describe
    transfers, not tensor splits).  With ``strict=True`` an unsplittable
    axis raises :class:`QuantizationError`; otherwise it is counted in the
    report and the ratio passes through unchanged.
    """
    max_shift = 0.0
    n_ratios = 0
    levels = 0
    unrealizable = 0

    def workload_index(stages: List[ShardedStage]) -> Dict[str, ShardedWorkload]:
        return {sw.name: sw for sw in iter_sharded_workloads(stages)}

    def visit(plan: HierarchicalPlan,
              stages: List[ShardedStage]) -> HierarchicalPlan:
        nonlocal max_shift, n_ratios, levels, unrealizable
        if plan.level_plan is None:
            return HierarchicalPlan(level_plan=None, scheme=plan.scheme)
        levels += 1
        by_name = workload_index(stages)

        new_entries: List[PlanEntry] = []
        for entry in plan.level_plan.entries:
            if not isinstance(entry, LayerAssignment):
                # join/exit alignment entries describe transfers, not
                # tensor splits; their nominal ratios pass through
                new_entries.append(entry)
                continue
            extent = partitioned_extent(by_name[entry.name], entry.ptype)
            try:
                snapped = quantize_ratio(entry.alpha, extent)
            except QuantizationError:
                if strict:
                    raise
                unrealizable += 1
                new_entries.append(entry)
                continue
            max_shift = max(max_shift, abs(snapped - entry.alpha))
            n_ratios += 1
            new_entries.append(LayerAssignment(entry.name, entry.ptype, snapped))

        level = LevelPlan(entries=tuple(new_entries),
                          cost=plan.level_plan.cost,
                          scheme=plan.level_plan.scheme)
        assignments = level.layer_assignments()
        left_stages = shard_stages(stages, assignments, "left")
        right_stages = shard_stages(stages, assignments, "right")
        assert plan.left is not None and plan.right is not None
        return HierarchicalPlan(
            level_plan=level,
            left=visit(plan.left, left_stages),
            right=visit(plan.right, right_stages),
            scheme=plan.scheme,
        )

    quantized_plan = visit(planned.plan, planned.stages)
    quantized = PlannedExecution(
        network_name=planned.network_name,
        batch=planned.batch,
        scheme=planned.scheme,
        tree=planned.tree,
        stages=planned.stages,
        plan=quantized_plan,
        dtype_bytes=planned.dtype_bytes,
    )
    report = QuantizationReport(
        max_ratio_shift=max_shift,
        n_ratios=n_ratios,
        levels_quantized=levels,
        unrealizable=unrealizable,
    )
    return quantized, report
