"""Partitioning-ratio solver (Section 5.3, Eq. 10).

AccPar balances the sum of computation and communication cost between the
two parties of a split: find α with

    cost_i(α) = cost_j(1 - α).

Most transitions yield costs affine in α, but the Type-I→Type-II and
Type-III→Type-I inter-layer terms are proportional to α·β = α(1-α)
(Table 5), so instead of a closed form we use a robust bracketed bisection on
``g(α) = cost_i(α) - cost_j(1-α)`` with a scan fallback minimizing the pair
maximum when ``g`` does not change sign on the bracket.
"""

from __future__ import annotations

from typing import Callable, Tuple

#: ratios are kept strictly inside (0, 1); a zero share would be a degenerate
#: "partition" the basic types do not model
RATIO_LO = 1e-3
RATIO_HI = 1.0 - 1e-3

PairCostFn = Callable[[float], Tuple[float, float]]


def solve_balanced_ratio(
    pair_cost: PairCostFn,
    lo: float = RATIO_LO,
    hi: float = RATIO_HI,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> float:
    """Solve ``cost_i(α) == cost_j(1-α)`` for α in ``[lo, hi]``.

    ``pair_cost(α)`` returns ``(cost_i, cost_j)`` already evaluated at shares
    ``(α, 1-α)``.  Falls back to minimizing ``max(cost_i, cost_j)`` by golden
    -section-style scan if the balance residual never changes sign (which can
    happen when one party dominates at every admissible ratio).
    """
    if not lo < hi:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")

    def residual(alpha: float) -> float:
        ci, cj = pair_cost(alpha)
        return ci - cj

    g_lo = residual(lo)
    g_hi = residual(hi)
    if g_lo == 0.0:
        return lo
    if g_hi == 0.0:
        return hi
    if g_lo * g_hi > 0.0:
        return _minimize_pair_max(pair_cost, lo, hi)

    a, b = lo, hi
    ga = g_lo
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        gm = residual(mid)
        if abs(gm) <= tol or (b - a) <= tol:
            return mid
        if ga * gm <= 0.0:
            b = mid
        else:
            a, ga = mid, gm
    return 0.5 * (a + b)


def _minimize_pair_max(pair_cost: PairCostFn, lo: float, hi: float,
                       samples: int = 64) -> float:
    """Scan fallback: the α minimizing the slower party's cost."""
    best_alpha = lo
    best_value = float("inf")
    for k in range(samples + 1):
        alpha = lo + (hi - lo) * k / samples
        ci, cj = pair_cost(alpha)
        value = max(ci, cj)
        if value < best_value:
            best_value = value
            best_alpha = alpha
    return best_alpha


def compute_proportional_ratio(flops_i: float, flops_j: float) -> float:
    """The ratio matching raw compute densities: α = c_i / (c_i + c_j).

    Used as the nominal ratio for boundary-only transfers (skip paths) where
    there is no per-layer computation to balance, and as the initial guess in
    diagnostics.
    """
    if flops_i <= 0 or flops_j <= 0:
        raise ValueError("compute densities must be positive")
    alpha = flops_i / (flops_i + flops_j)
    return min(max(alpha, RATIO_LO), RATIO_HI)
