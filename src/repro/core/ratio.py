"""Partitioning-ratio solver (Section 5.3, Eq. 10).

AccPar balances the sum of computation and communication cost between the
two parties of a split: find α with

    cost_i(α) = cost_j(1 - α).

Per Tables 4-6 each party's cost is at most *quadratic* in α: computation
and the F/E boundary moves are affine, and only the Type-I→Type-II and
Type-III→Type-I inter-layer terms contribute the α·β = α(1-α) cross term
(Table 5).  The balance equation therefore has a closed form — a linear
solve for affine transitions, the quadratic formula for the cross
transitions — implemented by :func:`solve_balanced_ratio_poly` over
:class:`PairCostPoly` coefficient tuples.  The bracketed bisection
(:func:`solve_balanced_ratio`) is kept both as the generic closure-based
API and as the *checked fallback*: whenever the closed form produces no
admissible root, the solver falls back to it rather than guessing.

When the balance residual never changes sign on the bracket (one party
dominates at every admissible ratio) there is no balanced α; both solvers
then minimize ``max(cost_i, cost_j)`` by golden-section search instead.
"""

from __future__ import annotations

import math
from typing import Callable, NamedTuple, Optional, Tuple

from ..obs.tracing import tracer

#: ratios are kept strictly inside (0, 1); a zero share would be a degenerate
#: "partition" the basic types do not model
RATIO_LO = 1e-3
RATIO_HI = 1.0 - 1e-3

PairCostFn = Callable[[float], Tuple[float, float]]

#: solver paths (counter suffixes): how a balanced ratio was obtained
PATH_LINEAR = "closed_linear"
PATH_QUADRATIC = "closed_quadratic"
PATH_BISECTION = "bisection_fallback"
PATH_MINIMAX = "minimax"

_INV_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


class PairCostPoly(NamedTuple):
    """Coefficients of one Eq. 10 balance problem.

    Both parties' costs are expressed in the share α of party *i*::

        cost_i(α) = const_i + lin_i·α + quad_i·α(1-α)
        cost_j(α) = const_j + lin_j·α + quad_j·α(1-α)

    (party j's affine part is folded into ``const_j``/``lin_j``, so
    ``lin_j`` is typically negative: j's compute share is 1-α.)  The
    α(1-α) terms carry the Table 5 cross transitions; they vanish for
    every other transition family.  A NamedTuple rather than a dataclass:
    one is built per uncached planner step, and tuple construction is
    several times cheaper.
    """

    const_i: float
    lin_i: float
    quad_i: float
    const_j: float
    lin_j: float
    quad_j: float

    def costs(self, alpha: float) -> Tuple[float, float]:
        ab = alpha * (1.0 - alpha)
        return (
            self.const_i + self.lin_i * alpha + self.quad_i * ab,
            self.const_j + self.lin_j * alpha + self.quad_j * ab,
        )

    def residual(self, alpha: float) -> float:
        """g(α) = cost_i(α) - cost_j(α)."""
        ci, cj = self.costs(alpha)
        return ci - cj


def solve_balanced_ratio_poly(
    poly: PairCostPoly,
    lo: float = RATIO_LO,
    hi: float = RATIO_HI,
) -> Tuple[float, str]:
    """Closed-form Eq. 10 solve; returns ``(α, solver_path)``.

    When tracing is enabled each solve becomes a ``ratio.solve`` span
    whose ``path`` attribute records which solver branch answered; the
    disabled path is a single attribute check.
    """
    if tracer.enabled:
        with tracer.span("ratio.solve", category="ratio") as span:
            alpha, path = _solve_balanced_ratio_poly(poly, lo, hi)
            span.set("path", path)
            span.set("alpha", alpha)
        return alpha, path
    return _solve_balanced_ratio_poly(poly, lo, hi)


def _solve_balanced_ratio_poly(
    poly: PairCostPoly,
    lo: float,
    hi: float,
) -> Tuple[float, str]:
    """The untraced closed-form solve behind :func:`solve_balanced_ratio_poly`.

    The residual ``g(α) = ΔA + ΔB·α + ΔC·α(1-α)`` is affine or quadratic:

    * ``ΔC == 0`` — affine: root at ``-ΔA/ΔB``;
    * otherwise — ``-ΔC·α² + (ΔB+ΔC)·α + ΔA = 0``, solved with the
      numerically stable (citardauq) quadratic formula; a sign change of
      ``g`` on the bracket guarantees exactly one root inside it.

    Mirrors :func:`solve_balanced_ratio`'s bracket semantics exactly so the
    two emit identical decisions: endpoint roots are returned as-is and a
    residual that never changes sign falls back to minimizing the pair
    maximum.  If the closed form yields no admissible in-bracket root
    (degenerate coefficients), the checked fallback re-solves by bisection.
    """
    if not lo < hi:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")

    # endpoint residuals, inlined with the exact operation order of
    # ``poly.residual`` (costs first, then the subtraction) so the sign
    # checks below agree bit-for-bit with the closure-based solver
    const_i, lin_i, quad_i, const_j, lin_j, quad_j = poly
    ab = lo * (1.0 - lo)
    g_lo = (const_i + lin_i * lo + quad_i * ab) - (const_j + lin_j * lo + quad_j * ab)
    ab = hi * (1.0 - hi)
    g_hi = (const_i + lin_i * hi + quad_i * ab) - (const_j + lin_j * hi + quad_j * ab)
    if g_lo == 0.0:
        return lo, PATH_LINEAR
    if g_hi == 0.0:
        return hi, PATH_LINEAR

    d_a = const_i - const_j
    d_b = lin_i - lin_j
    d_c = quad_i - quad_j

    if g_lo * g_hi > 0.0:
        return _minimize_pair_max_poly(poly, d_a, d_b, d_c, lo, hi), PATH_MINIMAX

    if d_c == 0.0:
        # affine residual: ΔA + ΔB·α = 0; ΔB != 0 because g changes sign
        root = -d_a / d_b
        if math.isfinite(root) and lo <= root <= hi:
            return root, PATH_LINEAR
    else:
        root = _quadratic_root_in(d_a, d_b, d_c, lo, hi)
        if root is not None:
            return root, PATH_QUADRATIC

    # checked fallback: the analytic root was lost to degenerate floats
    return solve_balanced_ratio(poly.costs, lo, hi), PATH_BISECTION


def solve_balanced_ratio_poly_batch(
    const_i,
    lin_i,
    quad_i,
    const_j,
    lin_j,
    quad_j,
    lo: float = RATIO_LO,
    hi: float = RATIO_HI,
):
    """Closed-form Eq. 10 over arrays of coefficients; ``(α array, path counts)``.

    The elementwise twin of :func:`_solve_balanced_ratio_poly`, used by the
    vectorized search backend to solve every (layer, family, type) balance
    problem of a level in one shot.  Every branch replicates the scalar
    solver's arithmetic *in the same operation order* — numpy's float64
    elementwise ops are the same IEEE doubles — so each element's α is
    bit-identical to the scalar solve on its coefficients:

    * endpoint residuals exactly zero → that endpoint (linear path);
    * residual sign unchanged across the bracket → endpoint minimax, unless
      a root of the quadratic residual sits strictly inside the bracket (a
      rare interior double root), which defers to the scalar solver's
      golden-section fallback;
    * affine residual → ``-ΔA/ΔB`` when admissible;
    * quadratic residual → the two-branch citardauq roots, first admissible
      candidate wins (same candidate order as :func:`_quadratic_root_in`);
    * anything left (degenerate floats, inadmissible roots) → the scalar
      solver per element, which applies its checked bisection fallback.

    ``counts`` maps the :data:`PATH_LINEAR` /... constants to how many
    elements each solver path answered, for the caller's counters.
    """
    import numpy as np

    if not lo < hi:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        ab = lo * (1.0 - lo)
        ci_lo = const_i + lin_i * lo + quad_i * ab
        cj_lo = const_j + lin_j * lo + quad_j * ab
        ab = hi * (1.0 - hi)
        ci_hi = const_i + lin_i * hi + quad_i * ab
        cj_hi = const_j + lin_j * hi + quad_j * ab
        g_lo = ci_lo - cj_lo
        g_hi = ci_hi - cj_hi

        alpha = np.empty_like(g_lo)
        alpha.fill(np.nan)
        counts = {PATH_LINEAR: 0, PATH_QUADRATIC: 0,
                  PATH_BISECTION: 0, PATH_MINIMAX: 0}

        at_lo = g_lo == 0.0
        at_hi = ~at_lo & (g_hi == 0.0)
        alpha[at_lo] = lo
        alpha[at_hi] = hi
        open_mask = ~(at_lo | at_hi)

        d_a = const_i - const_j
        d_b = lin_i - lin_j
        d_c = quad_i - quad_j

        # citardauq machinery, shared by the minimax guard and the root
        # branch (mirrors _quadratic_root_in / _minimize_pair_max_poly)
        a = d_c
        b = -(d_b + d_c)
        c = -d_a
        disc = b * b - 4.0 * a * c
        sqrt_d = np.sqrt(np.where(disc >= 0.0, disc, np.nan))
        q = np.where(b != 0.0, -0.5 * (b + np.copysign(sqrt_d, b)),
                     -0.5 * sqrt_d)
        r1 = np.where(a != 0.0, q / a, np.inf)
        r2 = np.where(q != 0.0, c / q, np.inf)

        # same residual sign at both endpoints: endpoint minimax, except the
        # interior-double-root case which needs the golden-section fallback
        same_sign = open_mask & (g_lo * g_hi > 0.0)
        interior = ((lo < r1) & (r1 < hi)) | ((lo < r2) & (r2 < hi))
        golden = same_sign & (d_c != 0.0) & (disc > 0.0) & interior
        endpoint = same_sign & ~golden
        v_lo = np.maximum(ci_lo, cj_lo)
        v_hi = np.maximum(ci_hi, cj_hi)
        alpha[endpoint] = np.where(v_lo <= v_hi, lo, hi)[endpoint]
        counts[PATH_MINIMAX] += int(np.count_nonzero(endpoint))

        # a sign change brackets exactly one root
        changes = open_mask & ~same_sign
        affine = changes & (d_c == 0.0)
        aff_root = -d_a / d_b
        aff_ok = affine & np.isfinite(aff_root) & (lo <= aff_root) & (aff_root <= hi)
        alpha[aff_ok] = aff_root[aff_ok]
        counts[PATH_LINEAR] += int(
            np.count_nonzero(at_lo) + np.count_nonzero(at_hi)
            + np.count_nonzero(aff_ok)
        )

        quad = changes & (d_c != 0.0) & (disc >= 0.0)
        pick1 = quad & np.isfinite(r1) & (lo <= r1) & (r1 <= hi)
        pick2 = quad & ~pick1 & np.isfinite(r2) & (lo <= r2) & (r2 <= hi)
        alpha[pick1] = r1[pick1]
        alpha[pick2] = r2[pick2]
        counts[PATH_QUADRATIC] += int(
            np.count_nonzero(pick1) + np.count_nonzero(pick2)
        )

    # everything still NaN defers to the scalar solver: the golden-section
    # minimax fallback and the checked-bisection degenerate cases
    for idx in np.flatnonzero(np.isnan(alpha)):
        poly = PairCostPoly(
            float(const_i.flat[idx]), float(lin_i.flat[idx]),
            float(quad_i.flat[idx]), float(const_j.flat[idx]),
            float(lin_j.flat[idx]), float(quad_j.flat[idx]),
        )
        a_scalar, path = _solve_balanced_ratio_poly(poly, lo, hi)
        alpha.flat[idx] = a_scalar
        counts[path] += 1
    return alpha, counts


def _quadratic_root_in(
    d_a: float, d_b: float, d_c: float, lo: float, hi: float
) -> Optional[float]:
    """The root of ``ΔA + ΔB·α + ΔC·(α-α²)`` inside ``[lo, hi]``, if any.

    Rewritten as ``a·α² + b·α + c = 0`` with ``a = ΔC``, ``b = -(ΔB+ΔC)``,
    ``c = -ΔA`` and solved via the two-branch stable formula (one root from
    the standard form, the other from the citardauq form), which keeps
    precision when ``a`` is small or ``b`` nearly cancels the discriminant.
    """
    a, b, c = d_c, -(d_b + d_c), -d_a
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        return None
    sqrt_d = math.sqrt(disc)
    q = -0.5 * (b + math.copysign(sqrt_d, b)) if b != 0.0 else -0.5 * sqrt_d
    roots = []
    if a != 0.0:
        roots.append(q / a)
    if q != 0.0:
        roots.append(c / q)
    candidates = [r for r in roots if math.isfinite(r) and lo <= r <= hi]
    if not candidates:
        return None
    # a sign change admits exactly one interior root; floating point can
    # surface the second only when both sit at the same point anyway
    return candidates[0]


def solve_balanced_ratio(
    pair_cost: PairCostFn,
    lo: float = RATIO_LO,
    hi: float = RATIO_HI,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> float:
    """Traced wrapper over :func:`_solve_balanced_ratio` (bisection).

    Emits a ``ratio.bisection`` span when tracing is enabled — including
    when it runs as the closed-form solver's checked fallback, where the
    span nests inside the ``ratio.solve`` span that triggered it.
    """
    if tracer.enabled:
        with tracer.span("ratio.bisection", category="ratio") as span:
            alpha = _solve_balanced_ratio(pair_cost, lo, hi, tol, max_iter)
            span.set("alpha", alpha)
        return alpha
    return _solve_balanced_ratio(pair_cost, lo, hi, tol, max_iter)


def _solve_balanced_ratio(
    pair_cost: PairCostFn,
    lo: float = RATIO_LO,
    hi: float = RATIO_HI,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> float:
    """Solve ``cost_i(α) == cost_j(1-α)`` for α in ``[lo, hi]`` by bisection.

    ``pair_cost(α)`` returns ``(cost_i, cost_j)`` already evaluated at shares
    ``(α, 1-α)``.  Falls back to minimizing ``max(cost_i, cost_j)`` by
    golden-section search if the balance residual never changes sign (which
    can happen when one party dominates at every admissible ratio).

    ``tol`` bounds the returned α's distance from the true root (the bracket
    is bisected until it is narrower than ``tol``); the iteration only stops
    early on an exactly-zero residual, so the answer agrees with the
    closed-form solver to solver precision rather than to a residual
    threshold whose meaning depends on the cost magnitudes.

    This is the generic closure-based solver; when the per-party costs are
    available as :class:`PairCostPoly` coefficients, prefer the closed-form
    :func:`solve_balanced_ratio_poly` (identical answers, ~80× fewer cost
    evaluations).
    """
    if not lo < hi:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")

    def residual(alpha: float) -> float:
        ci, cj = pair_cost(alpha)
        return ci - cj

    g_lo = residual(lo)
    g_hi = residual(hi)
    if g_lo == 0.0:
        return lo
    if g_hi == 0.0:
        return hi
    if g_lo * g_hi > 0.0:
        return _minimize_pair_max(pair_cost, lo, hi)

    a, b = lo, hi
    ga = g_lo
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        gm = residual(mid)
        if gm == 0.0 or (b - a) <= tol:
            return mid
        if ga * gm <= 0.0:
            b = mid
        else:
            a, ga = mid, gm
    return 0.5 * (a + b)


def _minimize_pair_max(
    pair_cost: PairCostFn,
    lo: float,
    hi: float,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> float:
    """Golden-section search for the α minimizing the slower party's cost.

    This fallback only runs when the balance residual has one sign on the
    whole bracket, i.e. the same party is the slower one at every admissible
    α; ``max(cost_i, cost_j)`` then coincides with that party's single
    smooth cost — affine or quadratic under the model, hence unimodal on
    the bracket, which is exactly the shape golden-section search needs.
    The endpoints are compared against the interior optimum explicitly so
    boundary minima (e.g. of the concave α·β cross-term costs) are never
    missed.
    """

    def value(alpha: float) -> float:
        ci, cj = pair_cost(alpha)
        return max(ci, cj)

    a, b = lo, hi
    c = b - _INV_GOLDEN * (b - a)
    d = a + _INV_GOLDEN * (b - a)
    fc, fd = value(c), value(d)
    for _ in range(max_iter):
        if (b - a) <= tol:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INV_GOLDEN * (b - a)
            fc = value(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_GOLDEN * (b - a)
            fd = value(d)
    interior = c if fc <= fd else d

    best_alpha, best_value = lo, value(lo)
    for alpha in (interior, hi):
        v = value(alpha)
        if v < best_value:
            best_alpha, best_value = alpha, v
    return best_alpha


def _minimize_pair_max_poly(
    poly: PairCostPoly,
    d_a: float,
    d_b: float,
    d_c: float,
    lo: float,
    hi: float,
) -> float:
    """Endpoint minimax for polynomial pair costs.

    Each party's cost ``const + lin·α + quad·α(1-α)`` is affine or concave
    in α (second derivative ``-2·quad ≤ 0``), so on a bracket where one
    party dominates throughout, ``max(cost_i, cost_j)`` is that party's
    concave cost and its minimum sits at an endpoint — no search needed.
    Dominance can only switch mid-bracket if the quadratic residual dips
    through zero *strictly inside* the bracket despite same-sign endpoints
    (a double interior root); that rare case falls back to the same
    golden-section search the closure-based solver uses.  Ties between the
    endpoints keep ``lo``, matching the search's lo-first comparison order.
    """
    if d_c != 0.0:
        a, b, c = d_c, -(d_b + d_c), -d_a
        disc = b * b - 4.0 * a * c
        if disc > 0.0:
            sqrt_d = math.sqrt(disc)
            q = -0.5 * (b + math.copysign(sqrt_d, b)) if b != 0.0 else -0.5 * sqrt_d
            for root in ((q / a) if a != 0.0 else math.inf,
                         (c / q) if q != 0.0 else math.inf):
                if lo < root < hi:
                    return _minimize_pair_max(poly.costs, lo, hi)
    v_lo = max(poly.costs(lo))
    v_hi = max(poly.costs(hi))
    return lo if v_lo <= v_hi else hi


def compute_proportional_ratio(flops_i: float, flops_j: float) -> float:
    """The ratio matching raw compute densities: α = c_i / (c_i + c_j).

    Used as the nominal ratio for boundary-only transfers (skip paths) where
    there is no per-layer computation to balance, and as the initial guess in
    diagnostics.
    """
    if flops_i <= 0 or flops_j <= 0:
        raise ValueError("compute densities must be positive")
    alpha = flops_i / (flops_i + flops_j)
    return min(max(alpha, RATIO_LO), RATIO_HI)
