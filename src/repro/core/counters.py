"""Planner performance counters: how much work did a search actually do?

Two layers, matched to where the cost is paid:

* :class:`StepStats` — a plain-``__slots__`` bag of integers owned by one
  :class:`~repro.core.cost_model.PairCostModel`.  The DP inner loop bumps
  attributes directly (no locks, no dict lookups), so counting adds nothing
  measurable to the hot path.
* :class:`~repro.obs.registry.PerfCounters` — a thread-safe named-counter
  registry, now living in the unified observability registry
  (:mod:`repro.obs.registry`) and re-exported here so the historical
  import path keeps working.  The process-wide :data:`planner_counters`
  instance aggregates every search: schemes merge their model's
  :class:`StepStats` into it after each level plan, and the coarser events
  (hierarchy memo hits, multipath path DPs) increment it directly.  The
  plan service folds a snapshot into its ``stats``/``service-stats``
  output, and ``repro service-stats --format prometheus`` renders the
  same names as ``repro_planner_<name>_total`` series.

Counter names (all monotonic; the canonical list is
:data:`repro.obs.registry.PLANNER_COUNTER_NAMES`):

``step_calls`` / ``step_cache_hits``
    Eq. 9 step costings requested vs. answered from the per-model
    transition-family cache.
``boundary_calls`` / ``boundary_cache_hits``
    Table 5 boundary re-alignment costings (multi-path joins, skip paths).
``ratio_solves`` and the solver-path split ``ratio_closed_linear`` /
``ratio_closed_quadratic`` / ``ratio_bisection_fallback`` / ``ratio_minimax``
    How each balanced ratio (Eq. 10) was obtained: affine closed form,
    quadratic closed form (the α·β cross transitions), the checked bisection
    fallback, or the minimax fallback when one party dominates everywhere.
``hierarchy_memo_hits`` / ``hierarchy_memo_misses``
    Pairing-tree nodes answered from the symmetric-subtree memo vs. planned.
``multipath_path_dp_runs``
    Per-entry-state path DPs run inside fork/join regions (the vectorized
    backend counts the entry states each batched path run covers, so the
    number stays comparable across backends).
``vec_searches``
    Level searches served by the vectorized (``dp-vectorized``) kernel.
``vec_pack_cache_hits`` / ``vec_pack_cache_misses``
    Packed step-cost tensors answered from the module-wide cache vs built.
``vec_pack_ns`` / ``vec_recurrence_ns``
    Nanoseconds the vectorized kernel spent building cost tensors (phase 1)
    vs running the batched recurrence + backtracking (phase 2).
``vec_multipath_batches``
    Batched fork/join path runs (one per path per macro-stage evaluation,
    replacing ``|entry states|`` scalar DPs each).
"""

from __future__ import annotations

from typing import Dict

from ..obs.registry import PerfCounters, planner_counters

__all__ = ["StepStats", "PerfCounters", "planner_counters"]


class StepStats:
    """Lock-free per-model counters for the DP inner loop."""

    __slots__ = (
        "step_calls",
        "step_cache_hits",
        "boundary_calls",
        "boundary_cache_hits",
        "ratio_solves",
        "ratio_closed_linear",
        "ratio_closed_quadratic",
        "ratio_bisection_fallback",
        "ratio_minimax",
        "multipath_path_dp_runs",
        "vec_searches",
        "vec_pack_cache_hits",
        "vec_pack_cache_misses",
        "vec_pack_ns",
        "vec_recurrence_ns",
        "vec_multipath_batches",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def step_cache_hit_rate(self) -> float:
        return self.step_cache_hits / self.step_calls if self.step_calls else 0.0
