"""Plan serialization: persist and reload hierarchical partition plans.

A planning run is cheap for one model but a production deployment would
plan once and ship the decision to the runtime, so plans round-trip through
a plain-JSON document: the accelerator array, the model name and batch, and
the per-level plan entries.  Loading re-derives the pairing tree and sharded
stages deterministically and re-attaches the stored decisions.

Format version 2 stores each level as an *ordered* ``"entries"`` list of
typed records (``layer`` / ``join`` / ``exit``), mirroring the plan IR of
:mod:`repro.plan.ir` one-to-one.  Version-1 documents — a flat
``"assignments"`` dict whose fork/join decisions were encoded as magic
``@join:`` / ``@exit:`` key strings — are migrated on read, so every plan
file and disk-cache entry written by earlier releases keeps loading
bit-identically.  This module is the only place the v1 key convention
still exists, as migration shims.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..graph.network import Network
from ..ioutil import atomic_write_text
from ..hardware.accelerator import AcceleratorGroup, AcceleratorSpec
from ..hardware.cluster import bisection_tree
from ..models.registry import build_model
from ..plan.ir import (
    HierarchicalPlan,
    JoinAlignment,
    LayerAssignment,
    LevelPlan,
    PathExit,
    PlanEntry,
)
from .planner import PlannedExecution
from .stages import to_sharded_stages
from .types import PartitionType

FORMAT_VERSION = 2

#: versions this reader understands; v1 documents go through the
#: assignments-dict migration shim below
SUPPORTED_VERSIONS = (1, 2)

# v1's synthetic-key encoding of fork/join decisions, kept only for migration
_V1_JOIN_PREFIX = "@join:"
_V1_EXIT_PREFIX = "@exit:"


class PlanFormatError(ValueError):
    """Raised when a plan document cannot be understood by this reader.

    Distinguishes schema problems (wrong version, missing fields, invalid
    ratios) from the semantic validation errors raised further down the load
    path, so callers like the disk cache tier can treat unreadable documents
    as misses rather than crashes.
    """


#: the AcceleratorSpec constructor arguments this reader understands; any
#: other key in a stored spec comes from a future schema and is ignored
_SPEC_FIELDS = (
    "name", "flops", "memory_bytes", "memory_bandwidth", "network_bandwidth",
)


def _spec_to_dict(spec: AcceleratorSpec) -> Dict:
    return {
        "name": spec.name,
        "flops": spec.flops,
        "memory_bytes": spec.memory_bytes,
        "memory_bandwidth": spec.memory_bandwidth,
        "network_bandwidth": spec.network_bandwidth,
    }


def _spec_from_dict(data: Dict) -> AcceleratorSpec:
    missing = [f for f in _SPEC_FIELDS if f not in data]
    if missing:
        raise PlanFormatError(
            f"accelerator spec document is missing fields {missing}"
        )
    # keep only the known fields: documents written by a future schema may
    # carry extra keys, and the disk cache tier must stay readable across it
    return AcceleratorSpec(**{f: data[f] for f in _SPEC_FIELDS})


def _entry_to_dict(entry: PlanEntry) -> Dict:
    if isinstance(entry, LayerAssignment):
        return {"layer": entry.name, "type": entry.ptype.value,
                "alpha": entry.alpha}
    if isinstance(entry, JoinAlignment):
        return {"join": entry.stage, "state": entry.state.value,
                "alpha": entry.alpha}
    if isinstance(entry, PathExit):
        return {"exit": entry.stage, "path": entry.path_index,
                "state": entry.state.value, "alpha": entry.alpha}
    raise TypeError(f"not a plan entry: {entry!r}")  # pragma: no cover


def _ptype(value, context: str) -> PartitionType:
    try:
        return PartitionType(value)
    except ValueError:
        raise PlanFormatError(
            f"{context}: unknown partition type {value!r}"
        ) from None


def _alpha(value, context: str) -> float:
    if not isinstance(value, (int, float)) or not 0.0 < value < 1.0:
        raise PlanFormatError(
            f"{context}: ratio {value!r} outside the open interval (0, 1)"
        )
    return float(value)


def _entry_from_dict(data: Dict) -> PlanEntry:
    try:
        if "layer" in data:
            name = data["layer"]
            return LayerAssignment(
                name,
                _ptype(data["type"], f"layer {name!r}"),
                _alpha(data["alpha"], f"layer {name!r}"),
            )
        if "join" in data:
            stage = data["join"]
            return JoinAlignment(
                stage,
                _ptype(data["state"], f"join {stage!r}"),
                _alpha(data["alpha"], f"join {stage!r}"),
            )
        if "exit" in data:
            stage = data["exit"]
            return PathExit(
                stage,
                int(data["path"]),
                _ptype(data["state"], f"exit {stage!r}"),
                _alpha(data["alpha"], f"exit {stage!r}"),
            )
    except KeyError as exc:
        raise PlanFormatError(
            f"plan entry {data!r} is missing field {exc}"
        ) from None
    raise PlanFormatError(
        f"plan entry {data!r} has none of the discriminator keys "
        f"'layer' / 'join' / 'exit'"
    )


def _v1_entries(assignments: Dict[str, Dict]) -> List[PlanEntry]:
    """Migrate a v1 flat assignments dict to ordered typed entries.

    v1 encoded fork/join decisions as synthetic keys: ``@join:<stage>`` for
    the join state and ``@exit:<stage>:<path>`` for per-path exit states.
    Stage names themselves contain ``@`` and ``:`` (forks are named like
    ``fork@stem_relu``), so the exit path index is split off the *right*.
    JSON objects preserve insertion order, which v1 writers emitted in entry
    order — migration keeps it.
    """
    entries: List[PlanEntry] = []
    for key, record in assignments.items():
        ptype = _ptype(record["type"], f"v1 assignment {key!r}")
        alpha = _alpha(record["ratio"], f"v1 assignment {key!r}")
        if key.startswith(_V1_JOIN_PREFIX):
            entries.append(
                JoinAlignment(key[len(_V1_JOIN_PREFIX):], ptype, alpha)
            )
        elif key.startswith(_V1_EXIT_PREFIX):
            rest = key[len(_V1_EXIT_PREFIX):]
            stage, _, index = rest.rpartition(":")
            if not stage or not index.isdigit():
                raise PlanFormatError(
                    f"malformed v1 path-exit key {key!r}"
                )
            entries.append(PathExit(stage, int(index), ptype, alpha))
        else:
            entries.append(LayerAssignment(key, ptype, alpha))
    return entries


def _plan_node_to_dict(plan: HierarchicalPlan) -> Optional[Dict]:
    if plan.level_plan is None:
        return None
    return {
        "cost": plan.level_plan.cost,
        "scheme": plan.level_plan.scheme,
        "entries": [_entry_to_dict(e) for e in plan.level_plan.entries],
        "left": _plan_node_to_dict(plan.left) if plan.left else None,
        "right": _plan_node_to_dict(plan.right) if plan.right else None,
    }


def _plan_node_from_dict(data: Optional[Dict], scheme: str,
                         version: int) -> HierarchicalPlan:
    if data is None:
        return HierarchicalPlan(level_plan=None, scheme=scheme)
    if version == 1:
        entries = _v1_entries(data["assignments"])
    else:
        entries = [_entry_from_dict(e) for e in data["entries"]]
    try:
        level = LevelPlan(entries, cost=data["cost"], scheme=data["scheme"])
    except ValueError as exc:  # duplicate entries in a hand-edited document
        raise PlanFormatError(str(exc)) from None
    return HierarchicalPlan(
        level_plan=level,
        left=_plan_node_from_dict(data.get("left"), scheme, version),
        right=_plan_node_from_dict(data.get("right"), scheme, version),
        scheme=scheme,
    )


def plan_to_dict(planned: PlannedExecution) -> Dict:
    """Serialize a planned execution to a JSON-compatible document (v2)."""
    return {
        "format_version": FORMAT_VERSION,
        "network": planned.network_name,
        "batch": planned.batch,
        "scheme": planned.scheme,
        "dtype_bytes": planned.dtype_bytes,
        "levels": planned.hierarchy_levels(),
        "array": [_spec_to_dict(m) for m in planned.tree.group.members],
        "plan": _plan_node_to_dict(planned.plan),
    }


def plan_from_dict(
    data: Dict,
    network_builder: Optional[Callable[[str], Network]] = None,
) -> PlannedExecution:
    """Reconstruct a planned execution from :func:`plan_to_dict` output.

    Accepts both current (v2) documents and v1 documents, which are migrated
    transparently.  ``network_builder`` resolves the stored model name; it
    defaults to the model-zoo registry, so custom models must be registered
    (or passed via a custom builder) before loading.
    """
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise PlanFormatError(
            f"unsupported plan format version {version!r} (expected one of "
            f"{SUPPORTED_VERSIONS}); re-plan with this version of the "
            f"library or load with a matching reader"
        )
    builder = network_builder or build_model
    network = builder(data["network"])

    array = AcceleratorGroup(tuple(_spec_from_dict(s) for s in data["array"]))
    tree = bisection_tree(array, data["levels"])
    stages = to_sharded_stages(network.stages(data["batch"]))
    plan = _plan_node_from_dict(data["plan"], data["scheme"], version)

    if plan.depth() != tree.depth():
        raise ValueError(
            f"stored plan depth {plan.depth()} does not match the rebuilt "
            f"pairing tree depth {tree.depth()}"
        )

    return PlannedExecution(
        network_name=data["network"],
        batch=data["batch"],
        scheme=data["scheme"],
        tree=tree,
        stages=stages,
        plan=plan,
        dtype_bytes=data["dtype_bytes"],
    )


def save_plan(planned: PlannedExecution, path) -> None:
    """Atomically write a plan to a JSON file."""
    atomic_write_text(path, json.dumps(plan_to_dict(planned), indent=2))


def load_plan(path, network_builder=None) -> PlannedExecution:
    """Read a plan from a JSON file."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, network_builder)
