"""Plan serialization: persist and reload hierarchical partition plans.

A planning run is cheap for one model but a production deployment would
plan once and ship the decision to the runtime, so plans round-trip through
a plain-JSON document: the accelerator array, the model name and batch, and
the per-level assignments.  Loading re-derives the pairing tree and sharded
stages deterministically and re-attaches the stored decisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional

from ..graph.network import Network
from ..ioutil import atomic_write_text
from ..hardware.accelerator import AcceleratorGroup, AcceleratorSpec
from ..hardware.cluster import bisection_tree
from ..models.registry import build_model
from .planner import PlannedExecution
from .stages import to_sharded_stages
from .types import HierarchicalPlan, LayerPartition, LevelPlan, PartitionType

FORMAT_VERSION = 1


class PlanFormatError(ValueError):
    """Raised when a plan document cannot be understood by this reader.

    Distinguishes schema problems (wrong version, missing fields) from the
    semantic validation errors raised further down the load path, so callers
    like the disk cache tier can treat unreadable documents as misses rather
    than crashes.
    """


#: the AcceleratorSpec constructor arguments this reader understands; any
#: other key in a stored spec comes from a future schema and is ignored
_SPEC_FIELDS = (
    "name", "flops", "memory_bytes", "memory_bandwidth", "network_bandwidth",
)


def _spec_to_dict(spec: AcceleratorSpec) -> Dict:
    return {
        "name": spec.name,
        "flops": spec.flops,
        "memory_bytes": spec.memory_bytes,
        "memory_bandwidth": spec.memory_bandwidth,
        "network_bandwidth": spec.network_bandwidth,
    }


def _spec_from_dict(data: Dict) -> AcceleratorSpec:
    missing = [f for f in _SPEC_FIELDS if f not in data]
    if missing:
        raise PlanFormatError(
            f"accelerator spec document is missing fields {missing}"
        )
    # keep only the known fields: documents written by a future schema may
    # carry extra keys, and the disk cache tier must stay readable across it
    return AcceleratorSpec(**{f: data[f] for f in _SPEC_FIELDS})


def _plan_node_to_dict(plan: HierarchicalPlan) -> Optional[Dict]:
    if plan.level_plan is None:
        return None
    return {
        "cost": plan.level_plan.cost,
        "scheme": plan.level_plan.scheme,
        "assignments": {
            name: {"type": lp.ptype.value, "ratio": lp.ratio}
            for name, lp in plan.level_plan.assignments.items()
        },
        "left": _plan_node_to_dict(plan.left) if plan.left else None,
        "right": _plan_node_to_dict(plan.right) if plan.right else None,
    }


def _plan_node_from_dict(data: Optional[Dict], scheme: str) -> HierarchicalPlan:
    if data is None:
        return HierarchicalPlan(level_plan=None, scheme=scheme)
    assignments = {
        name: LayerPartition(PartitionType(entry["type"]), entry["ratio"])
        for name, entry in data["assignments"].items()
    }
    return HierarchicalPlan(
        level_plan=LevelPlan(assignments=assignments, cost=data["cost"],
                             scheme=data["scheme"]),
        left=_plan_node_from_dict(data.get("left"), scheme),
        right=_plan_node_from_dict(data.get("right"), scheme),
        scheme=scheme,
    )


def plan_to_dict(planned: PlannedExecution) -> Dict:
    """Serialize a planned execution to a JSON-compatible document."""
    return {
        "format_version": FORMAT_VERSION,
        "network": planned.network_name,
        "batch": planned.batch,
        "scheme": planned.scheme,
        "dtype_bytes": planned.dtype_bytes,
        "levels": planned.hierarchy_levels(),
        "array": [_spec_to_dict(m) for m in planned.tree.group.members],
        "plan": _plan_node_to_dict(planned.plan),
    }


def plan_from_dict(
    data: Dict,
    network_builder: Optional[Callable[[str], Network]] = None,
) -> PlannedExecution:
    """Reconstruct a planned execution from :func:`plan_to_dict` output.

    ``network_builder`` resolves the stored model name; it defaults to the
    model-zoo registry, so custom models must be registered (or passed via
    a custom builder) before loading.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanFormatError(
            f"unsupported plan format version {version!r} (expected {FORMAT_VERSION}); "
            f"re-plan with this version of the library or load with a matching reader"
        )
    builder = network_builder or build_model
    network = builder(data["network"])

    array = AcceleratorGroup(tuple(_spec_from_dict(s) for s in data["array"]))
    tree = bisection_tree(array, data["levels"])
    stages = to_sharded_stages(network.stages(data["batch"]))
    plan = _plan_node_from_dict(data["plan"], data["scheme"])

    if plan.depth() != tree.depth():
        raise ValueError(
            f"stored plan depth {plan.depth()} does not match the rebuilt "
            f"pairing tree depth {tree.depth()}"
        )

    return PlannedExecution(
        network_name=data["network"],
        batch=data["batch"],
        scheme=data["scheme"],
        tree=tree,
        stages=stages,
        plan=plan,
        dtype_bytes=data["dtype_bytes"],
    )


def save_plan(planned: PlannedExecution, path) -> None:
    """Atomically write a plan to a JSON file."""
    atomic_write_text(path, json.dumps(plan_to_dict(planned), indent=2))


def load_plan(path, network_builder=None) -> PlannedExecution:
    """Read a plan from a JSON file."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, network_builder)
