"""Sharded stage structures: the planner-side view of a network.

The graph IR produces stages over :class:`~repro.graph.layers.LayerWorkload`;
the hierarchical planner needs the same series-parallel skeleton but over
:class:`~repro.core.types.ShardedWorkload`, because each pairing-tree level
sees the tensors already cut down by its ancestors' decisions.  This module
converts between the two and applies a level's assignments to produce each
child's sub-problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..graph.network import LayerStage, ParallelStage, Stage
from ..plan.ir import LayerPartition
from .types import ShardedWorkload


@dataclass(frozen=True)
class ShardedLayerStage:
    """One weighted layer with its level-local sharded workload."""

    workload: ShardedWorkload

    @property
    def name(self) -> str:
        return self.workload.name


@dataclass(frozen=True)
class ShardedParallelStage:
    """A fork/join region over sharded stages; empty path = identity skip."""

    paths: Tuple[Tuple["ShardedStage", ...], ...]
    name: str = "parallel"

    def __post_init__(self) -> None:
        if len(self.paths) < 2:
            raise ValueError("a ShardedParallelStage needs at least two paths")


ShardedStage = Union[ShardedLayerStage, ShardedParallelStage]


def to_sharded_stages(stages: Sequence[Stage]) -> List[ShardedStage]:
    """Wrap graph stages into unsharded (fraction-1) planner stages."""
    out: List[ShardedStage] = []
    for stage in stages:
        if isinstance(stage, LayerStage):
            out.append(ShardedLayerStage(ShardedWorkload(stage.workload)))
        elif isinstance(stage, ParallelStage):
            out.append(
                ShardedParallelStage(
                    paths=tuple(tuple(to_sharded_stages(p)) for p in stage.paths),
                    name=stage.name,
                )
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage kind {type(stage).__name__}")
    return out


def iter_sharded_workloads(stages: Sequence[ShardedStage]) -> Iterable[ShardedWorkload]:
    """All sharded workloads in topological order."""
    for stage in stages:
        if isinstance(stage, ShardedLayerStage):
            yield stage.workload
        else:
            for path in stage.paths:
                yield from iter_sharded_workloads(path)


def iter_layer_stages(stages: Sequence[ShardedStage]) -> Iterable[ShardedLayerStage]:
    """All weighted layer stages in topological order.

    The stage-object twin of :func:`iter_sharded_workloads`, for callers
    that need to map each stage back to its position — the vectorized
    backend indexes its packed cost tensors by this order, which also makes
    the order part of the packed-tensor cache key via the workload keys.
    """
    for stage in stages:
        if isinstance(stage, ShardedLayerStage):
            yield stage
        else:
            for path in stage.paths:
                yield from iter_layer_stages(path)


def first_workload(stages: Sequence[ShardedStage]) -> ShardedWorkload:
    """The first weighted workload in a stage list (for fork-tensor sizing)."""
    for workload in iter_sharded_workloads(stages):
        return workload
    raise ValueError("stage list has no weighted layers")


def last_workload(stages: Sequence[ShardedStage]) -> ShardedWorkload:
    result = None
    for workload in iter_sharded_workloads(stages):
        result = workload
    if result is None:
        raise ValueError("stage list has no weighted layers")
    return result


def shard_stages(
    stages: Sequence[ShardedStage],
    assignments: Dict[str, LayerPartition],
    side: str,
) -> List[ShardedStage]:
    """The sub-problem one party sees below a level's plan.

    ``side`` is ``"left"`` (share α) or ``"right"`` (share β = 1-α).  Every
    weighted layer must have an assignment.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    left = side == "left"

    out: List[ShardedStage] = []
    for stage in stages:
        if isinstance(stage, ShardedLayerStage):
            lp = assignments.get(stage.name)
            if lp is None:
                raise KeyError(f"no assignment for layer {stage.name!r}")
            fraction = lp.ratio if left else 1.0 - lp.ratio
            out.append(
                ShardedLayerStage(stage.workload.shard(lp.ptype, fraction))
            )
        else:
            out.append(
                ShardedParallelStage(
                    paths=tuple(
                        tuple(shard_stages(p, assignments, side)) for p in stage.paths
                    ),
                    name=stage.name,
                )
            )
    return out


def flatten_to_chain(stages: Sequence[ShardedStage]) -> List[ShardedLayerStage]:
    """Linearize a series-parallel stage list into a plain chain.

    This is how the HyPar baseline sees multi-path networks (it "can only
    handle DNN architectures with linear structure", Section 1): layers are
    visited in topological order and fork/join structure is discarded.
    """
    return [ShardedLayerStage(w) for w in iter_sharded_workloads(stages)]
