"""Hierarchical (recursive) partitioning over the accelerator pairing tree.

Section 5.1: "apply the layer-wise partitioning recursively on a partitioned
hierarchy".  At every internal node of the pairing tree
(:func:`repro.hardware.cluster.bisection_tree`) a *scheme* decides the
per-layer partitioning between the node's two child groups; each child then
recursively plans its own (sharded) sub-problem.

Symmetric subtrees — ubiquitous once a homogeneous group is split equally —
produce identical sub-problems, so planning is memoized on
``(group signature, subtree depth, stage content)``; this collapses the 255
internal nodes of a 256-accelerator tree to a handful of distinct plans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..hardware.accelerator import AcceleratorGroup
from ..hardware.cluster import GroupNode
from ..obs.tracing import tracer
from ..plan.ir import HierarchicalPlan, LevelPlan
from .counters import planner_counters
from .stages import ShardedStage, iter_sharded_workloads, shard_stages


class PartitionScheme(Protocol):
    """A per-level planning policy: AccPar or one of the baselines."""

    name: str

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        """Assign a partition type and ratio to every weighted layer."""
        ...  # pragma: no cover - protocol


def stages_key(stages: Sequence[ShardedStage]) -> Tuple:
    """Hashable content key of a sharded stage list (for memoization)."""
    return tuple(w.key() for w in iter_sharded_workloads(stages))


def plan_tree(
    node: GroupNode,
    stages: List[ShardedStage],
    scheme: PartitionScheme,
    dtype_bytes: int = 2,
    _memo: Optional[Dict[Tuple, HierarchicalPlan]] = None,
) -> HierarchicalPlan:
    """Plan every level of the pairing tree rooted at ``node``."""
    if _memo is None:
        _memo = {}
    if node.is_leaf:
        return HierarchicalPlan(level_plan=None, scheme=scheme.name)

    key = (node.group.signature(), node.depth(), stages_key(stages))
    cached = _memo.get(key)
    if cached is not None:
        planner_counters.inc("hierarchy_memo_hits")
        return cached
    planner_counters.inc("hierarchy_memo_misses")

    assert node.left is not None and node.right is not None
    # the span wraps the level plan AND the recursion into both children,
    # so child hierarchy spans nest inside their parent's in the trace
    with tracer.span(
        "hierarchy.plan", category="hierarchy",
        level=node.level + 1, group=str(node.group), scheme=scheme.name,
    ):
        level = scheme.level_plan(stages, node.left.group, node.right.group,
                                  dtype_bytes)

        assignments = level.layer_assignments()
        left_stages = shard_stages(stages, assignments, "left")
        right_stages = shard_stages(stages, assignments, "right")

        plan = HierarchicalPlan(
            level_plan=level,
            left=plan_tree(node.left, left_stages, scheme, dtype_bytes, _memo),
            right=plan_tree(node.right, right_stages, scheme, dtype_bytes, _memo),
            scheme=scheme.name,
        )
    _memo[key] = plan
    return plan


def collect_level_plans(plan: HierarchicalPlan) -> List[LevelPlan]:
    """All LevelPlans in pre-order (root split first)."""
    result: List[LevelPlan] = []

    def visit(p: HierarchicalPlan) -> None:
        if p.level_plan is not None:
            result.append(p.level_plan)
        if p.left is not None:
            visit(p.left)
        if p.right is not None:
            visit(p.right)

    visit(plan)
    return result
