"""Greedy layer-by-layer search: the strawman Eq. 9 improves on.

A natural first idea is to pick each layer's type myopically — cheapest
step given only the previous layer's state.  It is O(N·|T|) and often
good, but it has no way to accept a locally-worse type that unlocks free
transitions later (the optimal-substructure argument behind the paper's
DP).  We implement it as a comparison point so the search benchmark can
quantify the DP's advantage, not just assert it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .cost_model import PairCostModel
from .dp_search import SearchResult
from .stages import ShardedLayerStage, ShardedStage
from .types import ALL_TYPES, LayerPartition, PartitionType


def greedy_chain(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
) -> SearchResult:
    """Myopic per-layer choice on a linear chain.

    Uses the same step costs as the DP, so any gap between the two is pure
    search quality.
    """
    for stage in stages:
        if not isinstance(stage, ShardedLayerStage):
            raise TypeError("greedy_chain handles linear chains only")
    if not space:
        raise ValueError("partition-type space must be non-empty")

    assignments: Dict[str, LayerPartition] = {}
    total = 0.0
    prev: Optional[PartitionType] = None
    for stage in stages:
        best = None
        for t in space:
            decision = model.step(stage.workload, prev, t)
            if best is None or decision.cost < best.cost:
                best = decision
        assert best is not None
        assignments[stage.name] = LayerPartition(best.ptype, best.alpha)
        total += best.cost
        prev = best.ptype

    return SearchResult(assignments=assignments, cost=total, exit_state=prev)
