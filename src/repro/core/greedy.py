"""Greedy layer-by-layer search: the strawman Eq. 9 improves on.

A natural first idea is to pick each layer's type myopically — cheapest
step given only the previous layer's state.  It is O(N·|T|) and often
good, but it has no way to accept a locally-worse type that unlocks free
transitions later (the optimal-substructure argument behind the paper's
DP).  We implement it as a comparison point so the search benchmark can
quantify the DP's advantage, not just assert it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..plan.ir import LayerAssignment, SearchResult
from .cost_model import PairCostModel
from .dp_search import SpaceFn, improves
from .stages import ShardedLayerStage, ShardedStage
from .types import ALL_TYPES, PartitionType


def greedy_chain(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
    space_fn: Optional[SpaceFn] = None,
) -> SearchResult:
    """Myopic per-layer choice on a linear chain.

    Uses the same step costs as the DP — including the ``COST_REL_TOL``
    tie-break of :func:`~repro.core.dp_search.improves`, so greedy-vs-DP
    comparisons measure search quality, not last-ulp float noise.
    """
    for stage in stages:
        if not isinstance(stage, ShardedLayerStage):
            raise TypeError("greedy_chain handles linear chains only")
    if not space:
        raise ValueError("partition-type space must be non-empty")

    entries: List[LayerAssignment] = []
    total = 0.0
    prev: Optional[PartitionType] = None
    for stage in stages:
        layer_space = space_fn(stage.workload) if space_fn is not None else space
        best = None
        best_cost: Optional[float] = None
        for t in layer_space:
            decision = model.step(stage.workload, prev, t)
            if improves(decision.cost, best_cost):
                best = decision
                best_cost = decision.cost
        assert best is not None
        entries.append(LayerAssignment(stage.name, best.ptype, best.alpha))
        total += best.cost
        prev = best.ptype

    return SearchResult(entries=tuple(entries), cost=total, exit_state=prev)
