"""Exhaustive O(|T|^N) enumeration — the optimality oracle for the DP.

Section 5.1 motivates the dynamic program by the impracticality of brute
force; we implement brute force anyway (for linear chains) so tests and the
search benchmark can certify that the DP returns exactly the optimum on
small networks, and quantify the asymptotic win.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

from .cost_model import PairCostModel
from .dp_search import SearchResult
from .stages import ShardedLayerStage, ShardedStage
from .types import ALL_TYPES, LayerPartition, PartitionType


def brute_force_chain(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
) -> SearchResult:
    """Enumerate every type sequence on a *linear* chain of weighted layers.

    Costs are accumulated with the same :meth:`PairCostModel.step` the DP
    uses, but with no shared structure — an independent check of Eq. 9's
    optimal-substructure argument rather than of the arithmetic alone.
    """
    for stage in stages:
        if not isinstance(stage, ShardedLayerStage):
            raise TypeError("brute_force_chain handles linear chains only")
    chain = [stage for stage in stages if isinstance(stage, ShardedLayerStage)]
    if not chain:
        return SearchResult(assignments={}, cost=0.0, exit_state=None)

    best_cost = float("inf")
    best_combo = None
    best_alphas: Sequence[float] = ()
    for combo in itertools.product(space, repeat=len(chain)):
        total = 0.0
        prev: Optional[PartitionType] = None
        alphas = []
        for stage, ptype in zip(chain, combo):
            decision = model.step(stage.workload, prev, ptype)
            total += decision.cost
            alphas.append(decision.alpha)
            prev = ptype
            if total >= best_cost:
                break
        else:
            best_cost = total
            best_combo = combo
            best_alphas = tuple(alphas)

    assert best_combo is not None
    assignments: Dict[str, LayerPartition] = {
        stage.name: LayerPartition(ptype, alpha)
        for stage, ptype, alpha in zip(chain, best_combo, best_alphas)
    }
    return SearchResult(
        assignments=assignments,
        cost=best_cost,
        exit_state=best_combo[-1],
    )
