"""Exhaustive O(|T|^N) enumeration — the optimality oracle for the DP.

Section 5.1 motivates the dynamic program by the impracticality of brute
force; we implement brute force anyway (for linear chains) so tests and the
search benchmark can certify that the DP returns exactly the optimum on
small networks, and quantify the asymptotic win.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from ..plan.ir import LayerAssignment, SearchResult
from .cost_model import PairCostModel
from .dp_search import SpaceFn
from .stages import ShardedLayerStage, ShardedStage
from .types import ALL_TYPES, PartitionType

#: refuse enumerations beyond this many layers by default — 3^12 ≈ 531k
#: combinations is the practical ceiling for a test-suite oracle; anything
#: longer is exactly the regime the paper's DP exists for
DEFAULT_MAX_LAYERS = 12


def brute_force_chain(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
    space_fn: Optional[SpaceFn] = None,
    max_layers: int = DEFAULT_MAX_LAYERS,
) -> SearchResult:
    """Enumerate every type sequence on a *linear* chain of weighted layers.

    Costs are accumulated with the same :meth:`PairCostModel.step` the DP
    uses, but with no shared structure — an independent check of Eq. 9's
    optimal-substructure argument rather than of the arithmetic alone.

    Chains longer than ``max_layers`` raise :class:`ValueError` instead of
    enumerating |T|^N combinations.
    """
    for stage in stages:
        if not isinstance(stage, ShardedLayerStage):
            raise TypeError("brute_force_chain handles linear chains only")
    chain = [stage for stage in stages if isinstance(stage, ShardedLayerStage)]
    if not chain:
        return SearchResult(entries=(), cost=0.0, exit_state=None)
    if len(chain) > max_layers:
        raise ValueError(
            f"brute force over {len(chain)} layers would enumerate "
            f"{len(space)}^{len(chain)} type sequences; the cap is "
            f"max_layers={max_layers} — use the 'dp' backend instead"
        )

    spaces = [
        tuple(space_fn(stage.workload)) if space_fn is not None else tuple(space)
        for stage in chain
    ]
    best_cost = float("inf")
    best_combo = None
    best_alphas: Sequence[float] = ()
    for combo in itertools.product(*spaces):
        total = 0.0
        prev: Optional[PartitionType] = None
        alphas = []
        for stage, ptype in zip(chain, combo):
            decision = model.step(stage.workload, prev, ptype)
            total += decision.cost
            alphas.append(decision.alpha)
            prev = ptype
            if total >= best_cost:
                break
        else:
            best_cost = total
            best_combo = combo
            best_alphas = tuple(alphas)

    assert best_combo is not None
    entries: Tuple[LayerAssignment, ...] = tuple(
        LayerAssignment(stage.name, ptype, alpha)
        for stage, ptype, alpha in zip(chain, best_combo, best_alphas)
    )
    return SearchResult(
        entries=entries,
        cost=best_cost,
        exit_state=best_combo[-1],
    )
