"""The one place that defines cost tie-breaking, scalar and vectorized.

Every search variant — the scalar DP (:mod:`repro.core.dp_search`), the
greedy baseline (:mod:`repro.core.greedy`) and the vectorized kernel
(:mod:`repro.core.dp_vectorized`) — must break cost ties identically, or
mathematically tied branches (symmetric fork paths, equal-cost exit
states) get broken by last-ulp float noise and the backends stop being
bit-identical.  The rule lives here exactly once:

* two candidates closer than :data:`COST_REL_TOL` *relative* slack are a
  tie, and the **first-seen** candidate wins;
* a genuine cost difference in the model is many orders of magnitude
  above 1e-9 relative, so the slack never masks a real decision.

:func:`improves` is the scalar form (one candidate vs one incumbent);
:func:`masked_first_within_slack` is the batched form — an argmin over a
candidate axis that picks the *lowest index* within slack of the minimum,
which is the vectorized equivalent of scanning candidates in order and
keeping the incumbent unless strictly beaten.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: relative slack for comparing candidate costs: two candidates closer than
#: this are a *tie* and the first-seen one wins.  Mathematically tied
#: branches otherwise get broken by last-ulp float noise, which depends on
#: the arithmetic route (closure evaluation vs polynomial coefficients vs
#: batched array ops) rather than the model — the slack makes every solver
#: variant of the same cost model emit the same plan.
COST_REL_TOL = 1e-9

#: sentinel cost for unreachable DP states in the vectorized kernel.  A
#: finite stand-in for +inf: ``inf - inf`` is NaN, which would poison the
#: slack arithmetic of :func:`masked_first_within_slack`, while 1e300 still
#: dwarfs every admissible cost (seconds) by ~300 orders of magnitude and
#: survives additions without overflowing.
UNREACHABLE = 1e300


def improves(candidate: float, incumbent: Optional[float]) -> bool:
    """True when ``candidate`` beats ``incumbent`` beyond float-noise slack."""
    if incumbent is None:
        return True
    slack = COST_REL_TOL * max(abs(candidate), abs(incumbent))
    return candidate < incumbent - slack


#: cached open index grids for the value gather, keyed by (rows, cols); a
#: process sees a handful of distinct frontier shapes
_GRID_CACHE: dict = {}


def masked_first_within_slack(candidates) -> Tuple["object", "object"]:
    """First-seen-wins argmin over axis 1 of a non-negative 3-D cost array.

    ``candidates`` has shape ``(rows, in_states, out_states)``; returns
    ``(values, choices)`` of shape ``(rows, out_states)``: per output slot,
    the index of the *first* in-state within :data:`COST_REL_TOL` relative
    slack of the slot minimum, and that candidate's own value (not the
    minimum — the scalar incumbent keeps the first-seen value).

    ``cand - min <= tol * cand`` is the mask: for non-negative costs it
    holds exactly for candidates within one slack width of the minimum
    (the minimum itself always qualifies, ``0 <= tol·cand``), and an
    :data:`UNREACHABLE` sentinel never qualifies against a real minimum
    because ``tol · 1e300`` is still ~1e9 times smaller than the gap.
    ``argmax`` of a boolean mask yields the first True — the lowest
    candidate index, i.e. the scalar scan's first-seen winner.
    """
    import numpy as np

    m = candidates.min(axis=1, keepdims=True)
    mask = (candidates - m) <= COST_REL_TOL * candidates
    choices = mask.argmax(axis=1)
    shape = (candidates.shape[0], candidates.shape[2])
    grids = _GRID_CACHE.get(shape)
    if grids is None:
        grids = (np.arange(shape[0])[:, None], np.arange(shape[1])[None, :])
        _GRID_CACHE[shape] = grids
    return candidates[grids[0], choices, grids[1]], choices
