"""Partition algebra: the three basic tensor-partitioning types of Section 3.

For each type, exactly one of the three dimensions ``B`` / ``D_i`` / ``D_o``
is partitioned between the two parties; the table below (the paper's Table 3,
"rotational symmetry") records which tensor is replicated and which phase
produces partial sums that must be exchanged:

========  =============  ===================  =====================  ==========
type      partitioned    replicated tensor    partial-sum tensor     psum phase
========  =============  ===================  =====================  ==========
Type-I    ``B``          ``W_l``              ``ΔW_l`` (= A(W_l))    gradient
Type-II   ``D_i``        ``E_{l+1}``          ``F_{l+1}``            forward
Type-III  ``D_o``        ``F_l``              ``E_l``                backward
========  =============  ===================  =====================  ==========

:class:`ShardedWorkload` carries a layer workload together with the
*fractions* of each logical dimension a party (or group) holds after the
partitions applied at enclosing hierarchy levels.  Fractions are real-valued
so that the flexible ratios of Section 5.3 compose exactly across levels;
all tensor sizes and FLOP counts derived from them are therefore also
real-valued ("effective" amounts, in the paper's words).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.layers import LayerWorkload


class PartitionType(enum.Enum):
    """The three basic tensor-partitioning types (Figure 1)."""

    TYPE_I = "I"     # partition the batch dimension B     (data parallelism)
    TYPE_II = "II"   # partition the input dimension D_i   (model parallelism)
    TYPE_III = "III"  # partition the output dimension D_o (the type OWT/HyPar miss)

    # planner inner loops are dict-heavy with partition-type keys; the
    # default Enum.__hash__ is a Python-level function, while members are
    # singletons so the C-level identity hash is exact and much cheaper
    __hash__ = object.__hash__

    def __str__(self) -> str:
        return f"Type-{self.value}"


#: the full search space T of Section 5.1
ALL_TYPES: Tuple[PartitionType, ...] = (
    PartitionType.TYPE_I,
    PartitionType.TYPE_II,
    PartitionType.TYPE_III,
)

#: the incomplete space used by OWT / HyPar (data + model parallelism)
HYPAR_TYPES: Tuple[PartitionType, ...] = (PartitionType.TYPE_I, PartitionType.TYPE_II)


class Phase(enum.Enum):
    """The three tensor computing phases of DNN training (Section 2.1)."""

    FORWARD = "forward"
    BACKWARD = "backward"
    GRADIENT = "gradient"


#: which dimension each type partitions
PARTITIONED_DIM: Dict[PartitionType, str] = {
    PartitionType.TYPE_I: "B",
    PartitionType.TYPE_II: "D_i",
    PartitionType.TYPE_III: "D_o",
}

#: which tensor must be fully replicated on both parties (Section 3.2)
REPLICATED_TENSOR: Dict[PartitionType, str] = {
    PartitionType.TYPE_I: "W",
    PartitionType.TYPE_II: "E_out",   # E_{l+1}
    PartitionType.TYPE_III: "F_in",   # F_l
}

#: which phase requires the partial-sum exchange (Table 3 / Table 4)
PSUM_PHASE: Dict[PartitionType, Phase] = {
    PartitionType.TYPE_I: Phase.GRADIENT,
    PartitionType.TYPE_II: Phase.FORWARD,
    PartitionType.TYPE_III: Phase.BACKWARD,
}


def _reduction_flops(reduction: float) -> float:
    """FLOPs per output element of a length-``reduction`` dot product.

    Integer reductions of length K cost 2K-1 (K multiplies, K-1 adds,
    Table 6).  Deep hierarchies can shard a dimension below one effective
    element; the cost then degrades to the multiplies alone, never negative.
    """
    return 2.0 * reduction - 1.0 if reduction >= 1.0 else reduction


@dataclass(frozen=True)
class ShardedWorkload:
    """A layer workload scaled by the dimension fractions a party holds.

    ``batch_frac`` / ``din_frac`` / ``dout_frac`` are the shares of ``B`` /
    ``D_i`` / ``D_o`` retained after all enclosing hierarchy levels.  A fresh
    (unsharded) layer has all fractions equal to 1.
    """

    base: LayerWorkload
    batch_frac: float = 1.0
    din_frac: float = 1.0
    dout_frac: float = 1.0

    def __post_init__(self) -> None:
        # unrolled validation: this constructor runs once per (layer, level,
        # side) in the hierarchical planner, and a getattr loop costs more
        # than the three comparisons it guards
        if not 0.0 < self.batch_frac <= 1.0:
            raise ValueError(f"batch_frac must be in (0, 1], got {self.batch_frac}")
        if not 0.0 < self.din_frac <= 1.0:
            raise ValueError(f"din_frac must be in (0, 1], got {self.din_frac}")
        if not 0.0 < self.dout_frac <= 1.0:
            raise ValueError(f"dout_frac must be in (0, 1], got {self.dout_frac}")

    def _derive(self) -> None:
        # Derived quantities are computed lazily in one batch on first
        # access and then read as plain instance attributes.  Lazy, because
        # the hierarchical planner constructs a workload per (layer, level,
        # side) just to *key* its memo tables — with warm subtree and
        # packed-tensor caches most of those are never costed at all.
        # Batched, because the planner hot path reads each of them
        # O(|T|²) times per layer per level, and plain attributes skip the
        # descriptor machinery a cached_property would pay on every access.
        # (A frozen dataclass still has a writable __dict__.)
        base = self.base
        batch = base.batch * self.batch_frac
        d_in = base.d_in * self.din_frac
        d_out = base.d_out * self.dout_frac
        a_in = batch * d_in * base.in_spatial
        a_out = batch * d_out * base.out_spatial
        a_w = d_in * d_out * base.kernel_spatial
        f_fwd = a_out * _reduction_flops(d_in * base.kernel_spatial)
        f_bwd = a_in * _reduction_flops(d_out * base.kernel_spatial)
        f_grad = a_w * _reduction_flops(batch * base.out_spatial)
        self.__dict__.update(
            _a_input_fm=a_in,
            _a_output_fm=a_out,
            _a_weight=a_w,
            _flops_forward=f_fwd,
            _flops_backward=f_bwd,
            _flops_gradient=f_grad,
            _flops_total=f_fwd + f_bwd + f_grad,
        )

    # -- effective dimensions ------------------------------------------
    @property
    def name(self) -> str:
        return self.base.name

    @property
    def batch(self) -> float:
        return self.base.batch * self.batch_frac

    @property
    def d_in(self) -> float:
        return self.base.d_in * self.din_frac

    @property
    def d_out(self) -> float:
        return self.base.d_out * self.dout_frac

    # -- effective tensor sizes (the paper's A(.)) ----------------------
    # Computed in one batch by _derive on first access; the public methods
    # keep their call syntax so call sites are unchanged.  The try/except
    # is free on the (overwhelmingly common) warm path.
    def a_input_fm(self) -> float:
        """A(F_l) = A(E_l)."""
        try:
            return self._a_input_fm
        except AttributeError:
            self._derive()
            return self._a_input_fm

    def a_output_fm(self) -> float:
        """A(F_{l+1}) = A(E_{l+1})."""
        try:
            return self._a_output_fm
        except AttributeError:
            self._derive()
            return self._a_output_fm

    def a_weight(self) -> float:
        """A(W_l) = A(ΔW_l)."""
        try:
            return self._a_weight
        except AttributeError:
            self._derive()
            return self._a_weight

    def a_psum(self, ptype: PartitionType) -> float:
        """Size of the partial-sum tensor exchanged intra-layer (Table 4)."""
        if ptype is PartitionType.TYPE_I:
            return self.a_weight()
        if ptype is PartitionType.TYPE_II:
            return self.a_output_fm()
        return self.a_input_fm()

    def a_replicated(self, ptype: PartitionType) -> float:
        """Size of the tensor replicated on both parties under ``ptype``."""
        if ptype is PartitionType.TYPE_I:
            return self.a_weight()
        if ptype is PartitionType.TYPE_II:
            return self.a_output_fm()  # E_{l+1} has the output fm shape
        return self.a_input_fm()       # F_l

    # -- FLOP counts (Table 6, CONV-extended per Section 4.3) ----------
    # Computed by _derive alongside the tensor sizes.
    def flops_forward(self) -> float:
        """A(F_{l+1}) * (2 * D_i * K_h * K_w - 1)."""
        try:
            return self._flops_forward
        except AttributeError:
            self._derive()
            return self._flops_forward

    def flops_backward(self) -> float:
        """A(E_l) * (2 * D_o * K_h * K_w - 1)."""
        try:
            return self._flops_backward
        except AttributeError:
            self._derive()
            return self._flops_backward

    def flops_gradient(self) -> float:
        """A(W_l) * (2 * B * H_o * W_o - 1)."""
        try:
            return self._flops_gradient
        except AttributeError:
            self._derive()
            return self._flops_gradient

    def flops_total(self) -> float:
        try:
            return self._flops_total
        except AttributeError:
            self._derive()
            return self._flops_total

    def flops_phase(self, phase: Phase) -> float:
        if phase is Phase.FORWARD:
            return self.flops_forward()
        if phase is Phase.BACKWARD:
            return self.flops_backward()
        return self.flops_gradient()

    # -- sharding -------------------------------------------------------
    def shard(self, ptype: PartitionType, fraction: float) -> "ShardedWorkload":
        """The sub-workload a party holds after partitioning by ``ptype``."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        # direct construction instead of dataclasses.replace: replace()
        # re-introspects the field list on every call, and sharding sits on
        # the per-level hot path of the hierarchical planner
        if ptype is PartitionType.TYPE_I:
            return ShardedWorkload(
                self.base, self.batch_frac * fraction, self.din_frac, self.dout_frac
            )
        if ptype is PartitionType.TYPE_II:
            return ShardedWorkload(
                self.base, self.batch_frac, self.din_frac * fraction, self.dout_frac
            )
        return ShardedWorkload(
            self.base, self.batch_frac, self.din_frac, self.dout_frac * fraction
        )

    def key(self) -> Tuple:
        """Hashable identity for memoization across symmetric subtrees."""
        # hand-rolled cache instead of functools.cached_property: the
        # hierarchy memo hashes every workload once per level, and the
        # descriptor protocol costs several times the dict probe below
        # (a frozen dataclass still has a writable __dict__)
        try:
            return self._key
        except AttributeError:
            base = self.base
            key = (
                base.name,
                base.batch,
                base.d_in,
                base.d_out,
                base.in_hw,
                base.out_hw,
                base.kernel_hw,
                round(self.batch_frac, 12),
                round(self.din_frac, 12),
                round(self.dout_frac, 12),
            )
            self.__dict__["_key"] = key
            return key
