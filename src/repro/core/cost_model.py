"""The AccPar cost model (Section 4): computation + communication, per party.

All costs are *seconds*.  Communication converts tensor elements to bytes
(bfloat16 by default) and divides by the accessing party's network bandwidth
``b_i`` (Eq. 7); computation divides effective FLOPs by the party's compute
density ``c_i`` (Eq. 8).

Three cost families are implemented exactly as the paper's tables:

* **intra-layer communication** (Table 4) — the partial-sum tensor of the
  one phase that cannot complete locally; independent of the ratio α because
  partial results are accumulated locally before the exchange;
* **inter-layer communication** (Table 5) — the re-alignment of the boundary
  tensors F_{l+1} / E_{l+1} between two adjacent layers' partition types,
  for all nine type transitions;
* **computation** (Table 6, CONV-extended per Section 4.3) — the three
  training mat-muls, scaled by the party's share α, plus the element-wise
  additions that combine the received partial sums.

The model is written for one *pair* of parties because the hierarchical
scheme (Section 5.1) always splits two ways; a party may itself be an
aggregated accelerator group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..hardware.accelerator import AcceleratorGroup
from .ratio import solve_balanced_ratio
from .types import PartitionType, ShardedWorkload

#: transitions with zero inter-layer cost: the boundary tensors already agree
ZERO_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_I),
        (PartitionType.TYPE_II, PartitionType.TYPE_III),
        (PartitionType.TYPE_III, PartitionType.TYPE_II),
    }
)

#: transitions whose cost is α·β·(A(F)+A(E)) for *both* parties
CROSS_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_II),
        (PartitionType.TYPE_III, PartitionType.TYPE_I),
    }
)

#: transitions moving the feature-map tensor: party i fetches β·A(F_{l+1})
F_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_III),
        (PartitionType.TYPE_III, PartitionType.TYPE_III),
    }
)

#: transitions moving the error tensor: party i fetches β·A(E_{l+1})
E_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_II, PartitionType.TYPE_I),
        (PartitionType.TYPE_II, PartitionType.TYPE_II),
    }
)


def inter_layer_elements(
    boundary_fm_elements: float,
    prev_type: PartitionType,
    cur_type: PartitionType,
    alpha: float,
) -> Tuple[float, float]:
    """Remotely-accessed element counts (party i, party j) for one transition.

    ``boundary_fm_elements`` is A(F_{l+1}) (= A(E_{l+1})) of the boundary
    between the two layers, already sharded by enclosing hierarchy levels.
    Party i holds share α, party j holds β = 1 - α.  This is Table 5 with
    the division by ``b_i`` deferred to the caller.
    """
    key = (prev_type, cur_type)
    beta = 1.0 - alpha
    if key in ZERO_TRANSITIONS:
        return 0.0, 0.0
    if key in CROSS_TRANSITIONS:
        amount = alpha * beta * 2.0 * boundary_fm_elements  # A(F)+A(E)
        return amount, amount
    if key in F_TRANSITIONS or key in E_TRANSITIONS:
        return beta * boundary_fm_elements, alpha * boundary_fm_elements
    raise ValueError(f"unknown transition {key!r}")


@dataclass(frozen=True)
class StepDecision:
    """Outcome of costing one layer under one (prev_type, type) transition."""

    ptype: PartitionType
    alpha: float
    cost: float        # the pair-combined cost the DP accumulates
    cost_i: float
    cost_j: float
    compute_i: float = 0.0
    compute_j: float = 0.0
    comm_i: float = 0.0
    comm_j: float = 0.0


class PairCostModel:
    """Cost model for one pairing-tree split: party *i* (left) vs *j* (right).

    ``ratio_mode`` selects how the pair of per-party costs becomes the single
    number the DP accumulates:

    * ``"balanced"`` — AccPar: solve Eq. 10 for α per layer and transition,
      cost = the (equal) value;
    * ``"proportional"`` — the global-ratio ablation: one fixed
      α = c_i/(c_i+c_j) for every layer (compute-proportional), cost = the
      slower party.  Isolates how much of the balanced mode's win comes
      from *per-layer* adaptation vs a single heterogeneity-aware ratio;
    * ``"equal"``    — baselines: α = 1/2, cost = the slower party
      (heterogeneous idle time shows up here, Section 6.2);
    * ``"comm-volume"`` — HyPar's objective: α = 1/2 and the cost is the raw
      communication *amount* in bytes (no computation, no bandwidth), since
      HyPar uses communication as the proxy for performance.
    """

    def __init__(
        self,
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int = 2,
        ratio_mode: str = "balanced",
    ):
        if ratio_mode not in ("balanced", "proportional", "equal", "comm-volume"):
            raise ValueError(f"unknown ratio_mode {ratio_mode!r}")
        if dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        self.party_i = party_i
        self.party_j = party_j
        self.c_i = party_i.flops
        self.c_j = party_j.flops
        self.b_i = party_i.network_bandwidth
        self.b_j = party_j.network_bandwidth
        self.dtype_bytes = dtype_bytes
        self.ratio_mode = ratio_mode

    def nominal_alpha(self) -> float:
        """Default share for boundary-only transfers (no computation to balance)."""
        if self.ratio_mode in ("balanced", "proportional"):
            return self.c_i / (self.c_i + self.c_j)
        return 0.5

    # ------------------------------------------------------------------
    # component costs
    # ------------------------------------------------------------------
    def compute_costs(self, sw: ShardedWorkload, ptype: PartitionType,
                      alpha: float) -> Tuple[float, float]:
        """Eq. 8 per party: α-share of the three mat-muls plus psum adds."""
        total = sw.flops_total()
        psum_adds = sw.a_psum(ptype)  # each party adds the full partial-sum tensor
        cost_i = (alpha * total + psum_adds) / self.c_i
        cost_j = ((1.0 - alpha) * total + psum_adds) / self.c_j
        return cost_i, cost_j

    def intra_costs(self, sw: ShardedWorkload, ptype: PartitionType) -> Tuple[float, float]:
        """Table 4 per party; independent of α by construction."""
        amount = sw.a_psum(ptype) * self.dtype_bytes
        return amount / self.b_i, amount / self.b_j

    def inter_costs(
        self,
        boundary_fm_elements: float,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> Tuple[float, float]:
        """Table 5 per party; zero for the first layer (no predecessor)."""
        if prev_type is None:
            return 0.0, 0.0
        amount_i, amount_j = inter_layer_elements(
            boundary_fm_elements, prev_type, cur_type, alpha
        )
        return (
            amount_i * self.dtype_bytes / self.b_i,
            amount_j * self.dtype_bytes / self.b_j,
        )

    def step_pair_costs(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> Tuple[float, float, Tuple[float, float], Tuple[float, float]]:
        """Full per-party costs of one DP step (Eq. 9's E_cp + E_cm)."""
        cp_i, cp_j = self.compute_costs(sw, cur_type, alpha)
        intra_i, intra_j = self.intra_costs(sw, cur_type)
        inter_i, inter_j = self.inter_costs(
            sw.a_input_fm(), prev_type, cur_type, alpha
        )
        cm_i = intra_i + inter_i
        cm_j = intra_j + inter_j
        return cp_i + cm_i, cp_j + cm_j, (cp_i, cp_j), (cm_i, cm_j)

    # ------------------------------------------------------------------
    # DP step costing under the configured ratio policy
    # ------------------------------------------------------------------
    def step(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
    ) -> StepDecision:
        if self.ratio_mode == "balanced":
            alpha = solve_balanced_ratio(
                lambda a: self.step_pair_costs(sw, prev_type, cur_type, a)[:2]
            )
            combine = max  # equal at the solution up to solver tolerance
        elif self.ratio_mode == "proportional":
            alpha = self.c_i / (self.c_i + self.c_j)
            combine = max
        elif self.ratio_mode == "equal":
            alpha = 0.5
            combine = max
        else:  # comm-volume: HyPar's communication-amount proxy
            alpha = 0.5
            volume = self._comm_volume(sw, prev_type, cur_type, alpha)
            return StepDecision(
                ptype=cur_type, alpha=alpha, cost=volume,
                cost_i=volume, cost_j=volume,
            )

        ci, cj, (cp_i, cp_j), (cm_i, cm_j) = self.step_pair_costs(
            sw, prev_type, cur_type, alpha
        )
        return StepDecision(
            ptype=cur_type,
            alpha=alpha,
            cost=combine(ci, cj),
            cost_i=ci,
            cost_j=cj,
            compute_i=cp_i,
            compute_j=cp_j,
            comm_i=cm_i,
            comm_j=cm_j,
        )

    def boundary_step(
        self,
        boundary_fm_elements: float,
        prev_type: PartitionType,
        cur_type: PartitionType,
        alpha: Optional[float] = None,
    ) -> StepDecision:
        """Cost of re-aligning a boundary tensor with no layer attached.

        Used for identity skip paths in multi-path regions (Section 5.2):
        the skip tensor produced under ``prev_type`` must be consumed under
        ``cur_type``.  With no computation to balance, the nominal ratio is
        the compute-proportional one (or 1/2 for equal-ratio schemes).
        """
        if alpha is None:
            alpha = self.nominal_alpha()
        if self.ratio_mode == "comm-volume":
            amount_i, amount_j = inter_layer_elements(
                boundary_fm_elements, prev_type, cur_type, alpha
            )
            volume = (amount_i + amount_j) * self.dtype_bytes
            return StepDecision(ptype=cur_type, alpha=alpha, cost=volume,
                                cost_i=volume, cost_j=volume)
        ci, cj = self.inter_costs(boundary_fm_elements, prev_type, cur_type, alpha)
        return StepDecision(
            ptype=cur_type, alpha=alpha, cost=max(ci, cj),
            cost_i=ci, cost_j=cj, comm_i=ci, comm_j=cj,
        )

    # ------------------------------------------------------------------
    def _comm_volume(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> float:
        """Total bytes moved (both parties): HyPar's optimization objective."""
        intra = 2.0 * sw.a_psum(cur_type) * self.dtype_bytes
        if prev_type is None:
            return intra
        amount_i, amount_j = inter_layer_elements(
            sw.a_input_fm(), prev_type, cur_type, alpha
        )
        return intra + (amount_i + amount_j) * self.dtype_bytes
