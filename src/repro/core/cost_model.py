"""The AccPar cost model (Section 4): computation + communication, per party.

All costs are *seconds*.  Communication converts tensor elements to bytes
(bfloat16 by default) and divides by the accessing party's network bandwidth
``b_i`` (Eq. 7); computation divides effective FLOPs by the party's compute
density ``c_i`` (Eq. 8).

Three cost families are implemented exactly as the paper's tables:

* **intra-layer communication** (Table 4) — the partial-sum tensor of the
  one phase that cannot complete locally; independent of the ratio α because
  partial results are accumulated locally before the exchange;
* **inter-layer communication** (Table 5) — the re-alignment of the boundary
  tensors F_{l+1} / E_{l+1} between two adjacent layers' partition types,
  for all nine type transitions;
* **computation** (Table 6, CONV-extended per Section 4.3) — the three
  training mat-muls, scaled by the party's share α, plus the element-wise
  additions that combine the received partial sums.

The model is written for one *pair* of parties because the hierarchical
scheme (Section 5.1) always splits two ways; a party may itself be an
aggregated accelerator group.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Tuple

from ..hardware.accelerator import AcceleratorGroup
from ..hardware.profile import ANALYTIC, HardwareProfile
from .counters import StepStats
from .ratio import (
    PATH_BISECTION,
    PATH_LINEAR,
    PATH_MINIMAX,
    PATH_QUADRATIC,
    PairCostPoly,
    solve_balanced_ratio,
    solve_balanced_ratio_poly,
    solve_balanced_ratio_poly_batch,
)
from .types import ALL_TYPES, PartitionType, ShardedWorkload

#: transitions with zero inter-layer cost: the boundary tensors already agree
ZERO_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_I),
        (PartitionType.TYPE_II, PartitionType.TYPE_III),
        (PartitionType.TYPE_III, PartitionType.TYPE_II),
    }
)

#: transitions whose cost is α·β·(A(F)+A(E)) for *both* parties
CROSS_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_II),
        (PartitionType.TYPE_III, PartitionType.TYPE_I),
    }
)

#: transitions moving the feature-map tensor: party i fetches β·A(F_{l+1})
F_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_I, PartitionType.TYPE_III),
        (PartitionType.TYPE_III, PartitionType.TYPE_III),
    }
)

#: transitions moving the error tensor: party i fetches β·A(E_{l+1})
E_TRANSITIONS = frozenset(
    {
        (PartitionType.TYPE_II, PartitionType.TYPE_I),
        (PartitionType.TYPE_II, PartitionType.TYPE_II),
    }
)

#: the four Table 5 cost families; a step's per-party costs depend on the
#: predecessor type only through its family, which is what collapses the
#: nine (prev, cur) transitions to at most four distinct costings per layer
FAMILY_ZERO = "zero"
FAMILY_CROSS = "cross"
FAMILY_F = "f-move"
FAMILY_E = "e-move"

_TRANSITION_FAMILY = {
    **{key: FAMILY_ZERO for key in ZERO_TRANSITIONS},
    **{key: FAMILY_CROSS for key in CROSS_TRANSITIONS},
    **{key: FAMILY_F for key in F_TRANSITIONS},
    **{key: FAMILY_E for key in E_TRANSITIONS},
}

#: family → row on the packed cost tensors' family axis.  The four Table 5
#: families collapse to *three* distinct cost columns: the F-move and E-move
#: transitions produce identical per-party coefficients (party i fetches
#: β·A(F_{l+1}), party j fetches α·A(E_{l+1}), and A(F) = A(E) for the
#: boundary tensor), which :meth:`PairCostModel._poly_parts` already
#: exploits by sharing one branch for both.
PACKED_FAMILY_INDEX = {FAMILY_ZERO: 0, FAMILY_CROSS: 1, FAMILY_F: 2, FAMILY_E: 2}

#: number of rows on the packed family axis
PACKED_FAMILY_COUNT = 3

#: representative (packed family row, type column, predecessor type) per
#: *reachable* cell of the packed grid, for the scalar packing route.  The
#: cross family cannot reach Type-III (no Table 5 transition maps there),
#: so that cell stays at the unreachable sentinel.
_PACK_REPRESENTATIVES = (
    (0, 0, None),
    (0, 1, None),
    (0, 2, None),
    (1, 0, PartitionType.TYPE_III),
    (1, 1, PartitionType.TYPE_I),
    (2, 0, PartitionType.TYPE_II),
    (2, 1, PartitionType.TYPE_II),
    (2, 2, PartitionType.TYPE_I),
)


def transition_family(
    prev_type: Optional[PartitionType], cur_type: PartitionType
) -> str:
    """The Table 5 cost family of one (prev, cur) transition.

    A free entry boundary (``prev_type is None``) incurs no inter-layer
    cost, exactly like the zero transitions, so it shares their family.
    """
    if prev_type is None:
        return FAMILY_ZERO
    return _TRANSITION_FAMILY[(prev_type, cur_type)]


def inter_layer_elements(
    boundary_fm_elements: float,
    prev_type: PartitionType,
    cur_type: PartitionType,
    alpha: float,
) -> Tuple[float, float]:
    """Remotely-accessed element counts (party i, party j) for one transition.

    ``boundary_fm_elements`` is A(F_{l+1}) (= A(E_{l+1})) of the boundary
    between the two layers, already sharded by enclosing hierarchy levels.
    Party i holds share α, party j holds β = 1 - α.  This is Table 5 with
    the division by ``b_i`` deferred to the caller.
    """
    key = (prev_type, cur_type)
    beta = 1.0 - alpha
    if key in ZERO_TRANSITIONS:
        return 0.0, 0.0
    if key in CROSS_TRANSITIONS:
        amount = alpha * beta * 2.0 * boundary_fm_elements  # A(F)+A(E)
        return amount, amount
    if key in F_TRANSITIONS or key in E_TRANSITIONS:
        return beta * boundary_fm_elements, alpha * boundary_fm_elements
    raise ValueError(f"unknown transition {key!r}")


class StepDecision(NamedTuple):
    """Outcome of costing one layer under one (prev_type, type) transition.

    A NamedTuple rather than a frozen dataclass: the planner constructs one
    per uncached step and tuple construction is several times cheaper.
    """

    ptype: PartitionType
    alpha: float
    cost: float        # the pair-combined cost the DP accumulates
    cost_i: float
    cost_j: float
    compute_i: float = 0.0
    compute_j: float = 0.0
    comm_i: float = 0.0
    comm_j: float = 0.0


class PairCostModel:
    """Cost model for one pairing-tree split: party *i* (left) vs *j* (right).

    ``ratio_mode`` selects how the pair of per-party costs becomes the single
    number the DP accumulates:

    * ``"balanced"`` — AccPar: solve Eq. 10 for α per layer and transition,
      cost = the (equal) value;
    * ``"proportional"`` — the global-ratio ablation: one fixed
      α = c_i/(c_i+c_j) for every layer (compute-proportional), cost = the
      slower party.  Isolates how much of the balanced mode's win comes
      from *per-layer* adaptation vs a single heterogeneity-aware ratio;
    * ``"equal"``    — baselines: α = 1/2, cost = the slower party
      (heterogeneous idle time shows up here, Section 6.2);
    * ``"comm-volume"`` — HyPar's objective: α = 1/2 and the cost is the raw
      communication *amount* in bytes (no computation, no bandwidth), since
      HyPar uses communication as the proxy for performance.

    Two hot-path optimizations are on by default and individually
    switchable (the throughput benchmark and the equivalence property tests
    run both configurations):

    * ``closed_form`` — solve Eq. 10 analytically from the
      :class:`~repro.core.ratio.PairCostPoly` coefficients instead of the
      ~80-iteration bisection (bisection remains the checked fallback);
    * ``memoize`` — cache one :class:`StepDecision` per
      ``(workload key, transition family, cur_type)``: compute and
      intra-layer costs are independent of the predecessor type, and the
      inter-layer cost depends on it only through the Table 5 family, so
      the nine transitions collapse to at most four costings per layer and
      repeated costings (multi-path entry states, greedy re-steps) become
      dictionary hits.

    Work performed is tallied in ``self.stats``
    (:class:`~repro.core.counters.StepStats`).
    """

    def __init__(
        self,
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int = 2,
        ratio_mode: str = "balanced",
        closed_form: bool = True,
        memoize: bool = True,
        profile: Optional[HardwareProfile] = None,
    ):
        if ratio_mode not in ("balanced", "proportional", "equal", "comm-volume"):
            raise ValueError(f"unknown ratio_mode {ratio_mode!r}")
        if dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        self.party_i = party_i
        self.party_j = party_j
        self.profile = ANALYTIC if profile is None else profile
        # the analytic flag picks the historical arithmetic verbatim on the
        # hot paths (and keeps them bit-identical to the pre-profile code)
        self._analytic = bool(getattr(self.profile, "is_analytic", False))
        self.c_i = self.profile.compute_rate(party_i)
        self.c_j = self.profile.compute_rate(party_j)
        self.b_i = party_i.network_bandwidth
        self.b_j = party_j.network_bandwidth
        self.dtype_bytes = dtype_bytes
        self.ratio_mode = ratio_mode
        self.closed_form = closed_form
        self.memoize = memoize
        self.stats = StepStats()
        self._step_cache: dict = {}
        self._boundary_cache: dict = {}
        if self._analytic:
            self._lat_i = 0.0
            self._lat_j = 0.0
        else:
            self._lat_i = self.profile.transfer_latency_s(party_i)
            self._lat_j = self.profile.transfer_latency_s(party_j)
        # per-kind effective compute rates and per-size effective bandwidths
        # are profile lookups; one dict per party keeps them O(1) on the
        # step hot path
        self._rate_cache_i: dict = {"default": self.c_i}
        self._rate_cache_j: dict = {"default": self.c_j}
        self._bw_cache_i: dict = {}
        self._bw_cache_j: dict = {}

        if ratio_mode in ("balanced", "proportional"):
            self._nominal_alpha = self.c_i / (self.c_i + self.c_j)
        else:
            self._nominal_alpha = 0.5

        # built once: the vectorized backend keys three module-level caches
        # on this per alignment matrix / packed tensor, so it is hot
        self._pack_key = (
            self.c_i,
            self.c_j,
            self.b_i,
            self.b_j,
            self.dtype_bytes,
            self.ratio_mode,
            self.closed_form,
            None if self._analytic else self.profile.fingerprint(),
        )

    def nominal_alpha(self) -> float:
        """Default share for boundary-only transfers (no computation to balance)."""
        return self._nominal_alpha

    def pack_key(self) -> Tuple:
        """Everything the packed step tensors depend on besides the workloads.

        Two models with equal ``pack_key()`` produce bit-identical packed
        tensors for the same workload sequence, which is what lets the
        vectorized backend share one module-level tensor cache across the
        fresh per-level :class:`PairCostModel` instances the planner builds.
        """
        return self._pack_key

    # ------------------------------------------------------------------
    # profile lookups (memoized per model instance)
    # ------------------------------------------------------------------
    @staticmethod
    def _kind(sw: ShardedWorkload) -> str:
        """The calibration op kind of a workload (profile rate selector)."""
        return "conv" if sw.base.is_conv else "fc"

    def _rate_i(self, kind: str) -> float:
        rate = self._rate_cache_i.get(kind)
        if rate is None:
            rate = self.profile.compute_rate(self.party_i, kind)
            self._rate_cache_i[kind] = rate
        return rate

    def _rate_j(self, kind: str) -> float:
        rate = self._rate_cache_j.get(kind)
        if rate is None:
            rate = self.profile.compute_rate(self.party_j, kind)
            self._rate_cache_j[kind] = rate
        return rate

    def _bw_i(self, nbytes: float) -> float:
        """Effective bandwidth of party i for one transfer of ``nbytes``.

        Evaluated at the α-independent *base* tensor size of the transfer so
        each party's step cost stays polynomial in α (the Eq. 10 closed
        forms require it); the latency constant is accounted separately.
        """
        bw = self._bw_cache_i.get(nbytes)
        if bw is None:
            bw = self.profile.network_bandwidth(self.party_i, nbytes)
            self._bw_cache_i[nbytes] = bw
        return bw

    def _bw_j(self, nbytes: float) -> float:
        bw = self._bw_cache_j.get(nbytes)
        if bw is None:
            bw = self.profile.network_bandwidth(self.party_j, nbytes)
            self._bw_cache_j[nbytes] = bw
        return bw

    # ------------------------------------------------------------------
    # dense step-cost packing (the vectorized backend's phase 1)
    # ------------------------------------------------------------------
    def pack_step_tensors(self, workloads: Sequence[ShardedWorkload]) -> Tuple:
        """Every Eq. 9 step costing of a level as two dense tensors.

        Returns ``(cost, alpha)``, each of shape
        ``(n_layers, PACKED_FAMILY_COUNT, |T|)``: Eq. 9's step cost and its
        Eq. 10 ratio for layer ``l`` entered through packed Table 5 family
        ``f`` under partition type ``t`` (type columns in ``ALL_TYPES``
        order).  Values are bit-identical to :meth:`step` on the same
        combination — the balanced closed-form route batches the polynomial
        build and the Eq. 10 solve through
        :func:`~repro.core.ratio.solve_balanced_ratio_poly_batch` with the
        scalar arithmetic's exact operation order; every other mode routes
        through the memoized :meth:`step` itself.  The one unreachable grid
        cell (cross family → Type-III) holds ``inf``.
        """
        if self.ratio_mode == "balanced" and self.closed_form:
            return self._pack_closed_form(workloads)
        import numpy as np

        n = len(workloads)
        cost = np.full((n, PACKED_FAMILY_COUNT, len(ALL_TYPES)), np.inf)
        alpha = np.full(cost.shape, self.nominal_alpha())
        for row, sw in enumerate(workloads):
            for fam_idx, t_idx, prev in _PACK_REPRESENTATIVES:
                decision = self.step(sw, prev, ALL_TYPES[t_idx])
                cost[row, fam_idx, t_idx] = decision.cost
                alpha[row, fam_idx, t_idx] = decision.alpha
        return cost, alpha

    def _pack_closed_form(self, workloads: Sequence[ShardedWorkload]) -> Tuple:
        """Balanced-mode packing: batched :meth:`_poly_parts` + batched Eq. 10.

        Mirrors :meth:`_step_closed_form` coefficient-for-coefficient, just
        over arrays: the base polynomial per (layer, type), the α·β cross
        term on the cross row, the boundary-move shift on the move row.
        Calibrated profiles route through
        :meth:`_pack_closed_form_profiled`, which mirrors the profiled
        scalar arithmetic the same way.
        """
        if not self._analytic:
            return self._pack_closed_form_profiled(workloads)
        import numpy as np

        n = len(workloads)
        total = np.empty(n)
        a_in = np.empty(n)
        psum = np.empty((n, len(ALL_TYPES)))
        for row, sw in enumerate(workloads):
            total[row] = sw.flops_total()
            a_in[row] = sw.a_input_fm()
            for col, t in enumerate(ALL_TYPES):
                psum[row, col] = sw.a_psum(t)

        dtype_bytes = float(self.dtype_bytes)
        intra = psum * dtype_bytes
        shape = (n, len(ALL_TYPES))
        base_ci = psum / self.c_i + intra / self.b_i
        base_li = np.broadcast_to((total / self.c_i)[:, None], shape)
        base_cj = (total[:, None] + psum) / self.c_j + intra / self.b_j
        base_lj = np.broadcast_to((-total / self.c_j)[:, None], shape)
        zero = np.zeros(shape)

        cross = 2.0 * a_in * dtype_bytes
        cross_qi = np.broadcast_to((cross / self.b_i)[:, None], shape)
        cross_qj = np.broadcast_to((cross / self.b_j)[:, None], shape)

        move = a_in * dtype_bytes
        move_bi = (move / self.b_i)[:, None]
        move_ci = base_ci + move_bi
        move_li = base_li - move_bi
        move_lj = base_lj + (move / self.b_j)[:, None]

        # family axis rows: 0 = zero, 1 = cross, 2 = move (PACKED_FAMILY_INDEX)
        const_i = np.stack([base_ci, base_ci, move_ci], axis=1)
        lin_i = np.stack([base_li, base_li, move_li], axis=1)
        quad_i = np.stack([zero, cross_qi, zero], axis=1)
        const_j = np.stack([base_cj, base_cj, base_cj], axis=1)
        lin_j = np.stack([base_lj, base_lj, move_lj], axis=1)
        quad_j = np.stack([zero, cross_qj, zero], axis=1)

        alpha, counts = solve_balanced_ratio_poly_batch(
            const_i, lin_i, quad_i, const_j, lin_j, quad_j
        )
        stats = self.stats
        stats.ratio_solves += alpha.size
        stats.ratio_closed_linear += counts[PATH_LINEAR]
        stats.ratio_closed_quadratic += counts[PATH_QUADRATIC]
        stats.ratio_bisection_fallback += counts[PATH_BISECTION]
        stats.ratio_minimax += counts[PATH_MINIMAX]

        ab = alpha * (1.0 - alpha)
        cost_i = const_i + lin_i * alpha + quad_i * ab
        cost_j = const_j + lin_j * alpha + quad_j * ab
        return np.where(cost_i >= cost_j, cost_i, cost_j), alpha

    def _pack_closed_form_profiled(self, workloads: Sequence[ShardedWorkload]) -> Tuple:
        """Calibrated-profile packing, bit-identical to the profiled scalar step.

        Mirrors the profiled branch of :meth:`_poly_parts` elementwise with
        the exact scalar operation order: per-kind compute rates, per-size
        effective bandwidths (looked up through the same memoized
        ``_bw_i``/``_bw_j`` scalars the step path uses), and latency
        constants masked to nonzero transfers (adding ``+0.0`` elsewhere,
        which is bitwise identity on the non-negative costs).
        """
        import numpy as np

        n = len(workloads)
        n_types = len(ALL_TYPES)
        total = np.empty(n)
        a_in = np.empty(n)
        rate_i = np.empty(n)
        rate_j = np.empty(n)
        psum = np.empty((n, n_types))
        for row, sw in enumerate(workloads):
            total[row] = sw.flops_total()
            a_in[row] = sw.a_input_fm()
            kind = self._kind(sw)
            rate_i[row] = self._rate_i(kind)
            rate_j[row] = self._rate_j(kind)
            for col, t in enumerate(ALL_TYPES):
                psum[row, col] = sw.a_psum(t)

        dtype_bytes = float(self.dtype_bytes)
        intra = psum * dtype_bytes
        shape = (n, n_types)
        # effective bandwidth per intra transfer (1.0 where the transfer is
        # empty: 0/1 keeps the term at exactly 0.0, matching the scalar's
        # skipped addition)
        bw_intra_i = np.ones(shape)
        bw_intra_j = np.ones(shape)
        for row in range(n):
            for col in range(n_types):
                nbytes = intra[row, col]
                if nbytes > 0:
                    bw_intra_i[row, col] = self._bw_i(nbytes)
                    bw_intra_j[row, col] = self._bw_j(nbytes)

        base_ci = psum / rate_i[:, None] + intra / bw_intra_i
        base_li = np.broadcast_to((total / rate_i)[:, None], shape)
        base_cj = (total[:, None] + psum) / rate_j[:, None] + intra / bw_intra_j
        base_lj = np.broadcast_to((-total / rate_j)[:, None], shape)
        zero = np.zeros(shape)

        # intra-transfer latency lands on every family's constant term
        base_ci = base_ci + np.where(psum > 0, self._lat_i, 0.0)
        base_cj = base_cj + np.where(psum > 0, self._lat_j, 0.0)

        # inter-transfer terms at the α-independent base sizes, rows where
        # the boundary tensor is nonzero
        cross_qi = np.zeros(n)
        cross_qj = np.zeros(n)
        move_bi = np.zeros(n)
        move_bj = np.zeros(n)
        for row in range(n):
            if a_in[row] > 0:
                cross = 2.0 * a_in[row] * dtype_bytes
                cross_qi[row] = cross / self._bw_i(cross)
                cross_qj[row] = cross / self._bw_j(cross)
                move = a_in[row] * dtype_bytes
                move_bi[row] = move / self._bw_i(move)
                move_bj[row] = move / self._bw_j(move)
        lat_edge_i = np.where(a_in > 0, self._lat_i, 0.0)[:, None]
        lat_edge_j = np.where(a_in > 0, self._lat_j, 0.0)[:, None]

        cross_ci = base_ci + lat_edge_i
        cross_cj = base_cj + lat_edge_j
        move_ci = base_ci + move_bi[:, None] + lat_edge_i
        move_li = base_li - move_bi[:, None]
        move_lj = base_lj + move_bj[:, None]
        move_cj = base_cj + lat_edge_j

        # family axis rows: 0 = zero, 1 = cross, 2 = move (PACKED_FAMILY_INDEX)
        const_i = np.stack([base_ci, cross_ci, move_ci], axis=1)
        lin_i = np.stack([base_li, base_li, move_li], axis=1)
        quad_i = np.stack(
            [zero, np.broadcast_to(cross_qi[:, None], shape), zero], axis=1)
        const_j = np.stack([base_cj, cross_cj, move_cj], axis=1)
        lin_j = np.stack([base_lj, base_lj, move_lj], axis=1)
        quad_j = np.stack(
            [zero, np.broadcast_to(cross_qj[:, None], shape), zero], axis=1)

        alpha, counts = solve_balanced_ratio_poly_batch(
            const_i, lin_i, quad_i, const_j, lin_j, quad_j
        )
        stats = self.stats
        stats.ratio_solves += alpha.size
        stats.ratio_closed_linear += counts[PATH_LINEAR]
        stats.ratio_closed_quadratic += counts[PATH_QUADRATIC]
        stats.ratio_bisection_fallback += counts[PATH_BISECTION]
        stats.ratio_minimax += counts[PATH_MINIMAX]

        ab = alpha * (1.0 - alpha)
        cost_i = const_i + lin_i * alpha + quad_i * ab
        cost_j = const_j + lin_j * alpha + quad_j * ab
        return np.where(cost_i >= cost_j, cost_i, cost_j), alpha

    # ------------------------------------------------------------------
    # component costs
    # ------------------------------------------------------------------
    def compute_costs(self, sw: ShardedWorkload, ptype: PartitionType,
                      alpha: float) -> Tuple[float, float]:
        """Eq. 8 per party: α-share of the three mat-muls plus psum adds.

        Under a calibrated profile the divisor is the party's *effective*
        rate for this workload's op kind; the analytic profile answers the
        peak rate for every kind, so the arithmetic is unchanged there.
        """
        total = sw.flops_total()
        psum_adds = sw.a_psum(ptype)  # each party adds the full partial-sum tensor
        kind = self._kind(sw)
        cost_i = (alpha * total + psum_adds) / self._rate_i(kind)
        cost_j = ((1.0 - alpha) * total + psum_adds) / self._rate_j(kind)
        return cost_i, cost_j

    def intra_costs(self, sw: ShardedWorkload, ptype: PartitionType) -> Tuple[float, float]:
        """Table 4 per party; independent of α by construction.

        Calibrated profiles derate the bandwidth at the transfer's size and
        charge the per-transfer latency constant when the exchange happens.
        """
        amount = sw.a_psum(ptype) * self.dtype_bytes
        if self._analytic:
            return amount / self.b_i, amount / self.b_j
        if amount <= 0:
            return 0.0, 0.0
        return (
            amount / self._bw_i(amount) + self._lat_i,
            amount / self._bw_j(amount) + self._lat_j,
        )

    def inter_costs(
        self,
        boundary_fm_elements: float,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> Tuple[float, float]:
        """Table 5 per party; zero for the first layer (no predecessor).

        Calibrated profiles evaluate the bandwidth-efficiency curve at the
        transition's α-independent base tensor size (the full boundary
        tensor for moves, both boundary tensors for cross re-alignments) so
        this stays consistent with :meth:`step_poly` at every α, and add
        the latency constant per nonzero transfer.
        """
        if prev_type is None:
            return 0.0, 0.0
        amount_i, amount_j = inter_layer_elements(
            boundary_fm_elements, prev_type, cur_type, alpha
        )
        if self._analytic:
            return (
                amount_i * self.dtype_bytes / self.b_i,
                amount_j * self.dtype_bytes / self.b_j,
            )
        family = transition_family(prev_type, cur_type)
        if family == FAMILY_ZERO or boundary_fm_elements <= 0:
            return 0.0, 0.0
        if family == FAMILY_CROSS:
            base = 2.0 * boundary_fm_elements * self.dtype_bytes
        else:
            base = boundary_fm_elements * self.dtype_bytes
        return (
            amount_i * self.dtype_bytes / self._bw_i(base) + self._lat_i,
            amount_j * self.dtype_bytes / self._bw_j(base) + self._lat_j,
        )

    def step_pair_costs(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> Tuple[float, float, Tuple[float, float], Tuple[float, float]]:
        """Full per-party costs of one DP step (Eq. 9's E_cp + E_cm)."""
        cp_i, cp_j = self.compute_costs(sw, cur_type, alpha)
        intra_i, intra_j = self.intra_costs(sw, cur_type)
        inter_i, inter_j = self.inter_costs(
            sw.a_input_fm(), prev_type, cur_type, alpha
        )
        cm_i = intra_i + inter_i
        cm_j = intra_j + inter_j
        return cp_i + cm_i, cp_j + cm_j, (cp_i, cp_j), (cm_i, cm_j)

    def _poly_parts(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        family: Optional[str] = None,
    ) -> Tuple[PairCostPoly, float, float]:
        """:meth:`step_poly` plus the ``(total FLOPs, psum)`` it consumed.

        The closed-form step needs the same two workload quantities again to
        split the balanced cost into compute and communication shares;
        returning them avoids a second pair of lookups on the hot path.

        Under a calibrated profile the compute density is per op kind, each
        transfer's bandwidth is the efficiency-derated one at the transfer's
        α-independent base size, and every nonzero transfer adds the
        per-transfer latency constant to both parties' *constant* terms —
        affine in α, so the Eq. 10 closed forms (and their bisection
        fallback, which evaluates this same polynomial) apply unchanged.
        """
        total = sw.flops_total()
        psum = sw.a_psum(cur_type)
        intra = psum * self.dtype_bytes
        if self._analytic:
            const_i = psum / self.c_i + intra / self.b_i
            lin_i = total / self.c_i
            quad_i = 0.0
            const_j = (total + psum) / self.c_j + intra / self.b_j
            lin_j = -total / self.c_j
            quad_j = 0.0
            if prev_type is not None:
                if family is None:
                    family = transition_family(prev_type, cur_type)
                if family == FAMILY_CROSS:
                    cross = 2.0 * sw.a_input_fm() * self.dtype_bytes
                    quad_i = cross / self.b_i
                    quad_j = cross / self.b_j
                elif family in (FAMILY_F, FAMILY_E):
                    move = sw.a_input_fm() * self.dtype_bytes
                    const_i += move / self.b_i
                    lin_i -= move / self.b_i
                    lin_j += move / self.b_j
            return (
                PairCostPoly(const_i, lin_i, quad_i, const_j, lin_j, quad_j),
                total,
                psum,
            )
        kind = self._kind(sw)
        c_i = self._rate_i(kind)
        c_j = self._rate_j(kind)
        const_i = psum / c_i + (intra / self._bw_i(intra) if intra > 0 else 0.0)
        lin_i = total / c_i
        quad_i = 0.0
        const_j = (total + psum) / c_j + (
            intra / self._bw_j(intra) if intra > 0 else 0.0)
        lin_j = -total / c_j
        quad_j = 0.0
        if psum > 0:
            const_i += self._lat_i
            const_j += self._lat_j
        if prev_type is not None:
            if family is None:
                family = transition_family(prev_type, cur_type)
            a_in = sw.a_input_fm()
            if family == FAMILY_CROSS and a_in > 0:
                cross = 2.0 * a_in * self.dtype_bytes
                quad_i = cross / self._bw_i(cross)
                quad_j = cross / self._bw_j(cross)
                const_i += self._lat_i
                const_j += self._lat_j
            elif family in (FAMILY_F, FAMILY_E) and a_in > 0:
                move = a_in * self.dtype_bytes
                move_i = move / self._bw_i(move)
                const_i += move_i
                lin_i -= move_i
                lin_j += move / self._bw_j(move)
                const_i += self._lat_i
                const_j += self._lat_j
        return (
            PairCostPoly(const_i, lin_i, quad_i, const_j, lin_j, quad_j),
            total,
            psum,
        )

    def step_poly(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        family: Optional[str] = None,
    ) -> PairCostPoly:
        """Eq. 9 step costs as α-polynomial coefficients (Tables 4-6).

        ``cost_i(α) = const_i + lin_i·α + quad_i·α(1-α)`` and likewise for
        party j; matches :meth:`step_pair_costs` at every α by construction
        (asserted by the property tests).  Callers that already know the
        transition's Table 5 ``family`` may pass it to skip the lookup.
        """
        return self._poly_parts(sw, prev_type, cur_type, family)[0]

    def _solve_balanced_alpha(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
    ) -> float:
        """Eq. 10 for one step: closed form when enabled, else bisection."""
        self.stats.ratio_solves += 1
        if not self.closed_form:
            return solve_balanced_ratio(
                lambda a: self.step_pair_costs(sw, prev_type, cur_type, a)[:2]
            )
        alpha, path = solve_balanced_ratio_poly(
            self.step_poly(sw, prev_type, cur_type)
        )
        if path == PATH_LINEAR:
            self.stats.ratio_closed_linear += 1
        elif path == PATH_QUADRATIC:
            self.stats.ratio_closed_quadratic += 1
        elif path == PATH_BISECTION:
            self.stats.ratio_bisection_fallback += 1
        else:
            self.stats.ratio_minimax += 1
        return alpha

    # ------------------------------------------------------------------
    # DP step costing under the configured ratio policy
    # ------------------------------------------------------------------
    def step(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        family: Optional[str] = None,
    ) -> StepDecision:
        """One memoized Eq. 9 step costing.

        The cache key is ``(workload key, transition family, cur_type)``:
        everything a :class:`StepDecision` contains is invariant across
        predecessor types within one Table 5 family.  Callers that already
        computed the family (the DP's family-collapse loop) may pass it in.
        """
        self.stats.step_calls += 1
        if family is None:
            family = transition_family(prev_type, cur_type)
        key = None
        if self.memoize:
            key = (sw.key(), family, cur_type)
            cached = self._step_cache.get(key)
            if cached is not None:
                self.stats.step_cache_hits += 1
                return cached
        decision = self._step_uncached(sw, prev_type, cur_type, family)
        if key is not None:
            self._step_cache[key] = decision
        return decision

    def _step_uncached(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        family: Optional[str] = None,
    ) -> StepDecision:
        if self.ratio_mode == "balanced":
            if self.closed_form:
                return self._step_closed_form(sw, prev_type, cur_type, family)
            alpha = self._solve_balanced_alpha(sw, prev_type, cur_type)
            combine = max  # equal at the solution up to solver tolerance
        elif self.ratio_mode == "proportional":
            alpha = self.c_i / (self.c_i + self.c_j)
            combine = max
        elif self.ratio_mode == "equal":
            alpha = 0.5
            combine = max
        else:  # comm-volume: HyPar's communication-amount proxy
            alpha = 0.5
            volume = self._comm_volume(sw, prev_type, cur_type, alpha)
            return StepDecision(
                ptype=cur_type, alpha=alpha, cost=volume,
                cost_i=volume, cost_j=volume,
            )

        ci, cj, (cp_i, cp_j), (cm_i, cm_j) = self.step_pair_costs(
            sw, prev_type, cur_type, alpha
        )
        return StepDecision(
            ptype=cur_type,
            alpha=alpha,
            cost=combine(ci, cj),
            cost_i=ci,
            cost_j=cj,
            compute_i=cp_i,
            compute_j=cp_j,
            comm_i=cm_i,
            comm_j=cm_j,
        )

    def _step_closed_form(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        family: Optional[str] = None,
    ) -> StepDecision:
        """Balanced-mode step via one :class:`PairCostPoly` build.

        The polynomial serves both the Eq. 10 solve and the final cost
        evaluation, so the per-party cost formulas are computed exactly
        once per (family, type) combination.
        """
        poly, total, psum = self._poly_parts(sw, prev_type, cur_type, family)
        self.stats.ratio_solves += 1
        alpha, path = solve_balanced_ratio_poly(poly)
        if path == PATH_LINEAR:
            self.stats.ratio_closed_linear += 1
        elif path == PATH_QUADRATIC:
            self.stats.ratio_closed_quadratic += 1
        elif path == PATH_BISECTION:
            self.stats.ratio_bisection_fallback += 1
        else:
            self.stats.ratio_minimax += 1
        ci, cj = poly.costs(alpha)
        # compute shares, same arithmetic as compute_costs() with the
        # already-fetched workload quantities (per-kind rates equal the
        # peak ones under the analytic profile)
        kind = self._kind(sw)
        cp_i = (alpha * total + psum) / self._rate_i(kind)
        cp_j = ((1.0 - alpha) * total + psum) / self._rate_j(kind)
        return StepDecision(
            ptype=cur_type,
            alpha=alpha,
            cost=ci if ci >= cj else cj,
            cost_i=ci,
            cost_j=cj,
            compute_i=cp_i,
            compute_j=cp_j,
            comm_i=ci - cp_i,
            comm_j=cj - cp_j,
        )

    def boundary_step(
        self,
        boundary_fm_elements: float,
        prev_type: PartitionType,
        cur_type: PartitionType,
        alpha: Optional[float] = None,
    ) -> StepDecision:
        """Cost of re-aligning a boundary tensor with no layer attached.

        Used for identity skip paths in multi-path regions (Section 5.2):
        the skip tensor produced under ``prev_type`` must be consumed under
        ``cur_type``.  With no computation to balance, the nominal ratio is
        the compute-proportional one (or 1/2 for equal-ratio schemes).
        Memoized on ``(elements, prev, cur, α)`` — multi-path joins re-cost
        the same alignments once per entry state and exit alignment.
        """
        if alpha is None:
            alpha = self.nominal_alpha()
        self.stats.boundary_calls += 1
        key = None
        if self.memoize:
            key = (boundary_fm_elements, prev_type, cur_type, alpha)
            cached = self._boundary_cache.get(key)
            if cached is not None:
                self.stats.boundary_cache_hits += 1
                return cached
        decision = self._boundary_uncached(
            boundary_fm_elements, prev_type, cur_type, alpha
        )
        if key is not None:
            self._boundary_cache[key] = decision
        return decision

    def _boundary_uncached(
        self,
        boundary_fm_elements: float,
        prev_type: PartitionType,
        cur_type: PartitionType,
        alpha: float,
    ) -> StepDecision:
        if self.ratio_mode == "comm-volume":
            amount_i, amount_j = inter_layer_elements(
                boundary_fm_elements, prev_type, cur_type, alpha
            )
            volume = (amount_i + amount_j) * self.dtype_bytes
            return StepDecision(ptype=cur_type, alpha=alpha, cost=volume,
                                cost_i=volume, cost_j=volume)
        ci, cj = self.inter_costs(boundary_fm_elements, prev_type, cur_type, alpha)
        return StepDecision(
            ptype=cur_type, alpha=alpha, cost=max(ci, cj),
            cost_i=ci, cost_j=cj, comm_i=ci, comm_j=cj,
        )

    # ------------------------------------------------------------------
    def _comm_volume(
        self,
        sw: ShardedWorkload,
        prev_type: Optional[PartitionType],
        cur_type: PartitionType,
        alpha: float,
    ) -> float:
        """Total bytes moved (both parties): HyPar's optimization objective."""
        intra = 2.0 * sw.a_psum(cur_type) * self.dtype_bytes
        if prev_type is None:
            return intra
        amount_i, amount_j = inter_layer_elements(
            sw.a_input_fm(), prev_type, cur_type, alpha
        )
        return intra + (amount_i + amount_j) * self.dtype_bytes
