"""Public planning API: AccPar and scheme-parameterized planners.

Typical use::

    from repro import AccParPlanner, heterogeneous_array, build_model

    planner = AccParPlanner(heterogeneous_array())
    planned = planner.plan(build_model("vgg19"), batch=512)

``planned`` bundles the pairing tree, the sharded stages and the
per-level plans; feed it to :func:`repro.sim.evaluate` for the simulated
iteration time, or inspect ``planned.root_level_plan`` for the per-layer
decisions (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graph.network import Network
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.cluster import GroupNode, bisection_tree, max_hierarchy_levels
from .cost_model import PairCostModel
from .counters import planner_counters
from .dp_search import search_stages
from .greedy import greedy_chain
from .hierarchy import PartitionScheme, collect_level_plans, plan_tree
from .stages import ShardedStage, flatten_to_chain, to_sharded_stages
from .types import ALL_TYPES, HierarchicalPlan, LevelPlan, PartitionType


class AccParScheme:
    """The paper's scheme: complete space, joint compute+comm cost, Eq. 10 ratios.

    ``space`` and ``ratio_mode`` are exposed for the ablation studies
    (restricting to {Type-I, Type-II} isolates the value of Type-III;
    ``ratio_mode="equal"`` isolates the value of flexible ratios).
    """

    def __init__(
        self,
        space: Sequence[PartitionType] = ALL_TYPES,
        ratio_mode: str = "balanced",
        name: str = "accpar",
        closed_form: bool = True,
        memoize: bool = True,
    ):
        self.space = tuple(space)
        self.ratio_mode = ratio_mode
        self.name = name
        # hot-path knobs, forwarded to PairCostModel; the throughput
        # benchmark and equivalence tests flip them off to get the
        # pre-optimization (bisection, uncached) planner
        self.closed_form = closed_form
        self.memoize = memoize

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        model = PairCostModel(party_i, party_j, dtype_bytes, self.ratio_mode,
                              closed_form=self.closed_form,
                              memoize=self.memoize)
        result = search_stages(list(stages), model, self.space)
        planner_counters.merge(model.stats.as_dict())
        return LevelPlan(assignments=result.assignments, cost=result.cost,
                         scheme=self.name)


class GreedyScheme:
    """Myopic per-layer scheme: :func:`repro.core.greedy.greedy_chain` per level.

    O(N·|T|) instead of the DP's O(N·|T|²) and with no multi-path branch
    search (fork/join regions are linearized), so it answers fast at the cost
    of search quality.  The plan service uses it as the graceful-degradation
    fallback when an exact planning job blows through a request deadline; the
    response is marked ``degraded`` and the exact plan replaces it in the
    cache once the background job lands.
    """

    def __init__(
        self,
        space: Sequence[PartitionType] = ALL_TYPES,
        ratio_mode: str = "balanced",
        name: str = "greedy",
    ):
        self.space = tuple(space)
        self.ratio_mode = ratio_mode
        self.name = name

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        model = PairCostModel(party_i, party_j, dtype_bytes, self.ratio_mode)
        result = greedy_chain(flatten_to_chain(stages), model, self.space)
        planner_counters.merge(model.stats.as_dict())
        return LevelPlan(assignments=result.assignments, cost=result.cost,
                         scheme=self.name)


@dataclass
class PlannedExecution:
    """Everything needed to evaluate or inspect a hierarchical plan."""

    network_name: str
    batch: int
    scheme: str
    tree: GroupNode
    stages: List[ShardedStage]
    plan: HierarchicalPlan
    dtype_bytes: int

    @property
    def root_level_plan(self) -> LevelPlan:
        """The level-1 plan (the split the paper's Figure 7 reports per level)."""
        if self.plan.level_plan is None:
            raise ValueError("plan has no levels (single-accelerator array?)")
        return self.plan.level_plan

    def level_plans(self) -> List[LevelPlan]:
        return collect_level_plans(self.plan)

    def hierarchy_levels(self) -> int:
        return self.plan.depth()

    def layer_types_by_level(self) -> List[Dict[str, PartitionType]]:
        """Per level (following the leftmost spine), the layer→type map.

        Matches Figure 7's presentation: one row per hierarchy level.  The
        leftmost spine is representative because sibling subtrees are
        symmetric for homogeneous splits.
        """
        result: List[Dict[str, PartitionType]] = []
        node = self.plan
        while node is not None and node.level_plan is not None:
            result.append(
                {name: lp.ptype for name, lp in node.level_plan.assignments.items()}
            )
            node = node.left
        return result


class Planner:
    """Scheme-parameterized hierarchical planner over an accelerator array."""

    def __init__(
        self,
        array: AcceleratorGroup,
        scheme: PartitionScheme,
        dtype_bytes: int = 2,
        levels: Optional[int] = None,
        split_policy: str = "type-separated",
    ):
        self.array = array
        self.scheme = scheme
        self.dtype_bytes = dtype_bytes
        self.levels = levels
        self.split_policy = split_policy

    def plan(self, network: Network, batch: int) -> PlannedExecution:
        levels = self.levels
        if levels is None:
            levels = max_hierarchy_levels(self.array)
        tree = bisection_tree(self.array, levels, self.split_policy)
        stages = to_sharded_stages(network.stages(batch))
        plan = plan_tree(tree, stages, self.scheme, self.dtype_bytes)
        return PlannedExecution(
            network_name=network.name,
            batch=batch,
            scheme=self.scheme.name,
            tree=tree,
            stages=stages,
            plan=plan,
            dtype_bytes=self.dtype_bytes,
        )


class AccParPlanner(Planner):
    """The paper's planner: :class:`AccParScheme` over the given array."""

    def __init__(
        self,
        array: AcceleratorGroup,
        dtype_bytes: int = 2,
        levels: Optional[int] = None,
    ):
        super().__init__(array, AccParScheme(), dtype_bytes, levels)
