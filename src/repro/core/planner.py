"""Public planning API: AccPar and scheme-parameterized planners.

Typical use::

    from repro import AccParPlanner, heterogeneous_array, build_model

    planner = AccParPlanner(heterogeneous_array())
    planned = planner.plan(build_model("vgg19"), batch=512)

``planned`` bundles the pairing tree, the sharded stages and the
per-level plans; feed it to :func:`repro.sim.evaluate` for the simulated
iteration time, or inspect ``planned.root_level_plan`` for the per-layer
decisions (Figure 7).

Every scheme resolves its search algorithm through the backend registry
(:func:`repro.plan.get_backend`): ``AccParScheme(backend="greedy")`` runs
the paper's cost model under the myopic search, and the CLI's ``--backend``
flag reaches here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graph.network import Network
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.cluster import GroupNode, bisection_tree, max_hierarchy_levels
from ..hardware.profile import HardwareProfile
from ..plan.backends import canonical_backend_name, get_backend
from ..plan.ir import HierarchicalPlan, LevelPlan
from .cost_model import PairCostModel
from .counters import planner_counters
from .hierarchy import PartitionScheme, collect_level_plans, plan_tree
from .stages import ShardedStage, to_sharded_stages
from .types import ALL_TYPES, PartitionType


class AccParScheme:
    """The paper's scheme: complete space, joint compute+comm cost, Eq. 10 ratios.

    ``space`` and ``ratio_mode`` are exposed for the ablation studies
    (restricting to {Type-I, Type-II} isolates the value of Type-III;
    ``ratio_mode="equal"`` isolates the value of flexible ratios).
    ``backend`` names the search algorithm in the
    :mod:`repro.plan.backends` registry; the default is the exact DP.
    """

    def __init__(
        self,
        space: Sequence[PartitionType] = ALL_TYPES,
        ratio_mode: str = "balanced",
        name: str = "accpar",
        closed_form: bool = True,
        memoize: bool = True,
        backend: str = "dp",
        profile: Optional[HardwareProfile] = None,
    ):
        self.space = tuple(space)
        self.ratio_mode = ratio_mode
        self.name = name
        # hot-path knobs, forwarded to PairCostModel; the throughput
        # benchmark and equivalence tests flip them off to get the
        # pre-optimization (bisection, uncached) planner
        self.closed_form = closed_form
        self.memoize = memoize
        self.backend = backend
        # None = peak analytic rates; a CalibratedProfile re-prices every
        # PairCostModel this scheme builds with measured effective rates
        self.profile = profile

    def level_plan(
        self,
        stages: Sequence[ShardedStage],
        party_i: AcceleratorGroup,
        party_j: AcceleratorGroup,
        dtype_bytes: int,
    ) -> LevelPlan:
        model = PairCostModel(party_i, party_j, dtype_bytes, self.ratio_mode,
                              closed_form=self.closed_form,
                              memoize=self.memoize,
                              profile=self.profile)
        result = get_backend(self.backend).search(stages, model, self.space)
        planner_counters.merge(model.stats.as_dict())
        # per-backend served-plan series (repro_planner_level_plans_<b>_total
        # in Prometheus): which search algorithm actually produced the plans.
        # Aliases canonicalize so "dpv" and "dp-vectorized" feed one series.
        backend = canonical_backend_name(self.backend)
        planner_counters.inc("level_plans_" + backend.replace("-", "_"))
        return result.to_level_plan(self.name)


class GreedyScheme(AccParScheme):
    """Myopic per-layer scheme: the ``greedy`` backend under AccPar's cost model.

    O(N·|T|) instead of the DP's O(N·|T|²) and with no multi-path branch
    search (fork/join regions are linearized), so it answers fast at the cost
    of search quality.  The plan service uses it as the graceful-degradation
    fallback when an exact planning job blows through a request deadline; the
    response is marked ``degraded`` and the exact plan replaces it in the
    cache once the background job lands.
    """

    def __init__(
        self,
        space: Sequence[PartitionType] = ALL_TYPES,
        ratio_mode: str = "balanced",
        name: str = "greedy",
        backend: str = "greedy",
        profile: Optional[HardwareProfile] = None,
    ):
        super().__init__(space=space, ratio_mode=ratio_mode, name=name,
                         backend=backend, profile=profile)


@dataclass
class PlannedExecution:
    """Everything needed to evaluate or inspect a hierarchical plan."""

    network_name: str
    batch: int
    scheme: str
    tree: GroupNode
    stages: List[ShardedStage]
    plan: HierarchicalPlan
    dtype_bytes: int

    @property
    def root_level_plan(self) -> LevelPlan:
        """The level-1 plan (the split the paper's Figure 7 reports per level)."""
        if self.plan.level_plan is None:
            raise ValueError("plan has no levels (single-accelerator array?)")
        return self.plan.level_plan

    def level_plans(self) -> List[LevelPlan]:
        return collect_level_plans(self.plan)

    def hierarchy_levels(self) -> int:
        return self.plan.depth()

    def layer_types_by_level(self, strict: bool = False) -> List[Dict[str, PartitionType]]:
        """Per level (following the leftmost spine), the layer→type map.

        Matches Figure 7's presentation: one row per hierarchy level.  The
        leftmost spine is representative only when sibling subtrees plan
        identically — always true for homogeneous equal splits, but under
        the default ``type-separated`` split policy on a *heterogeneous*
        array the two children of the root are different sub-arrays and
        their subtree plans can legitimately differ.  ``strict=True``
        raises :class:`ValueError` in that case; the default keeps the
        leftmost spine (documented asymmetry) — use
        :meth:`layer_types_by_subtree` for the full per-subtree picture.
        """
        if strict and not self.subtrees_symmetric():
            raise ValueError(
                "sibling subtree plans differ (heterogeneous array under a "
                "type-separated split?); the leftmost spine is not "
                "representative — use layer_types_by_subtree()"
            )
        result: List[Dict[str, PartitionType]] = []
        node = self.plan
        while node is not None and node.level_plan is not None:
            result.append(
                {a.name: a.ptype for a in node.level_plan.layers()}
            )
            node = node.left
        return result

    def layer_types_by_subtree(self) -> Dict[str, Dict[str, PartitionType]]:
        """The layer→type map of *every* internal plan node, keyed by path.

        Paths are ``"root"``, ``"rootL"``, ``"rootR"``, ``"rootLL"`` … —
        the exact report for asymmetric plans where
        :meth:`layer_types_by_level` must pick one spine.
        """
        result: Dict[str, Dict[str, PartitionType]] = {}

        def visit(node: Optional[HierarchicalPlan], path: str) -> None:
            if node is None or node.level_plan is None:
                return
            result[path] = {a.name: a.ptype for a in node.level_plan.layers()}
            visit(node.left, path + "L")
            visit(node.right, path + "R")

        visit(self.plan, "root")
        return result

    def subtrees_symmetric(self) -> bool:
        """True when every pair of sibling subtrees carries identical plans."""

        def same(a: Optional[HierarchicalPlan],
                 b: Optional[HierarchicalPlan]) -> bool:
            if a is None or b is None:
                return a is b
            if a.level_plan is None or b.level_plan is None:
                return (a.level_plan is None) == (b.level_plan is None)
            if a.level_plan.entries != b.level_plan.entries:
                return False
            return same(a.left, b.left) and same(a.right, b.right)

        def visit(node: Optional[HierarchicalPlan]) -> bool:
            if node is None or node.level_plan is None:
                return True
            if not same(node.left, node.right):
                return False
            return visit(node.left) and visit(node.right)

        return visit(self.plan)


class Planner:
    """Scheme-parameterized hierarchical planner over an accelerator array."""

    def __init__(
        self,
        array: AcceleratorGroup,
        scheme: PartitionScheme,
        dtype_bytes: int = 2,
        levels: Optional[int] = None,
        split_policy: str = "type-separated",
    ):
        self.array = array
        self.scheme = scheme
        self.dtype_bytes = dtype_bytes
        self.levels = levels
        self.split_policy = split_policy

    def plan(self, network: Network, batch: int) -> PlannedExecution:
        # telemetry gate first: the disabled path must stay one attribute
        # read with zero allocations (the planner-throughput bench gates
        # this), so even the counter pre-snapshot is behind the guard
        from ..obs import telemetry as telemetry_store

        t = telemetry_store.active()
        if t is not None and not t.enabled:
            t = None
        if t is not None:
            from time import perf_counter

            counters_before = planner_counters.snapshot()
            started = perf_counter()

        # calibrated profiles re-order the pairing tree by effective rates
        # and must cover every spec in the array; fail fast and clearly
        # before any costing happens
        profile = getattr(self.scheme, "profile", None)
        if profile is not None:
            profile.validate_array(self.array)

        levels = self.levels
        if levels is None:
            levels = max_hierarchy_levels(self.array)
        tree = bisection_tree(self.array, levels, self.split_policy,
                              profile=profile)
        stages = to_sharded_stages(network.stages(batch))
        plan = plan_tree(tree, stages, self.scheme, self.dtype_bytes)
        planned = PlannedExecution(
            network_name=network.name,
            batch=batch,
            scheme=self.scheme.name,
            tree=tree,
            stages=stages,
            plan=plan,
            dtype_bytes=self.dtype_bytes,
        )

        if t is not None:
            counters_after = planner_counters.snapshot()
            delta = {
                name: value - counters_before.get(name, 0)
                for name, value in counters_after.items()
                if value - counters_before.get(name, 0)
            }
            t.record({
                "type": "search",
                "model": network.name,
                "batch": batch,
                "scheme": self.scheme.name,
                "backend": canonical_backend_name(
                    getattr(self.scheme, "backend", "dp")),
                "levels": levels,
                "elapsed_ms": round((perf_counter() - started) * 1e3, 3),
                "counters": delta,
            })
        return planned


class AccParPlanner(Planner):
    """The paper's planner: :class:`AccParScheme` over the given array."""

    def __init__(
        self,
        array: AcceleratorGroup,
        dtype_bytes: int = 2,
        levels: Optional[int] = None,
    ):
        super().__init__(array, AccParScheme(), dtype_bytes, levels)
