"""Vectorized layer-wise search: Eq. 9 as a batched min-plus recurrence.

The scalar DP (:mod:`repro.core.dp_search`) spends its time in pure-Python
loops — one :meth:`~repro.core.cost_model.PairCostModel.step` call chain and
one frontier comparison per (state, type) pair per stage.  This module runs
the same recurrence on dense numpy tensors instead, in two phases:

**Phase 1 — packing.**  Every step costing a level can ever need is
precomputed as two tensors of shape ``(n_layers, 3 families, |T| types)``
(:meth:`PairCostModel.pack_step_tensors`): Eq. 9's step cost and its Eq. 10
ratio per (layer, packed Table 5 family, type).  In balanced mode the
polynomial coefficients and the closed-form solve are themselves batched
(:func:`~repro.core.ratio.solve_balanced_ratio_poly_batch`), so packing a
level costs a handful of array ops rather than thousands of Python calls.
Packed tensors are cached module-wide keyed by
``(model.pack_key(), workload keys)`` — repeated plans of the same network
(the service's bread and butter) skip phase 1 entirely.

**Phase 2 — recurrence.**  The DP frontier is a cost matrix ``F`` of shape
``(entry_rows, |states|)``.  Per layer stage the update is one broadcast::

    cand = F[:, :, None] + C[None, :, :]        # C gathered from the pack
    F, choice = masked_first_within_slack(cand) # argmin over the in-state axis

with the argmin matrix recorded for O(N) backtracking into the typed IR
(:class:`~repro.plan.ir.LayerAssignment` / ``JoinAlignment`` / ``PathExit``).
A fork/join region runs each path *once* as a batch over all entry states
(identity-initialized frontier) instead of one scalar DP per entry state,
folds the exit re-alignments in as one broadcast add, and accumulates the
per-path minima into the macro cost matrix in path order — the same
floating-point addition sequence as the scalar code, which is what keeps
the two backends bit-identical (asserted across the model zoo and a seeded
randomized property suite).

Tie-breaking reuses the shared :mod:`repro.core.tiebreak` rule: the masked
argmin picks the lowest state index within ``COST_REL_TOL`` slack of the
minimum, exactly the scalar scan's first-seen-wins winner.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracing import tracer
from ..plan.ir import JoinAlignment, LayerAssignment, PathExit, PlanEntry, SearchResult
from .cost_model import PACKED_FAMILY_INDEX, PairCostModel, transition_family
from .dp_search import SpaceFn
from .multipath import alignment_cost
from .stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    ShardedStage,
    first_workload,
    iter_layer_stages,
    last_workload,
)
from .tiebreak import UNREACHABLE, improves, masked_first_within_slack
from .types import ALL_TYPES, PartitionType

State = Optional[PartitionType]

#: DP state codes: row/column order of every index table.  ``None`` (the
#: free entry boundary) first, then the types in ``ALL_TYPES`` order —
#: matching the scalar DP's frontier insertion order.
_STATE_ORDER: Tuple[State, ...] = (None,) + ALL_TYPES
_STATE_CODE: Dict[State, int] = {s: i for i, s in enumerate(_STATE_ORDER)}
_TYPE_CODE: Dict[PartitionType, int] = {t: i for i, t in enumerate(ALL_TYPES)}

#: packed family row per (state code, type code), derived from the same
#: transition_family the scalar DP consults
_FAM_TABLE = np.array(
    [
        [PACKED_FAMILY_INDEX[transition_family(s, t)] for t in ALL_TYPES]
        for s in _STATE_ORDER
    ],
    dtype=np.intp,
)

#: (in-state tuple, out-state tuple) → (family submatrix, type-code vector);
#: a handful of distinct combinations exist per process, so the index
#: arrays for the gather are built once each
_GATHER_MEMO: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}

#: packed-tensor cache: (model pack key, per-layer workload keys) →
#: :class:`_Pack`.  Bounded LRU; honored only for memoizing models, like
#: the model's own step cache.
_PACK_CACHE: "OrderedDict[Tuple, _Pack]" = OrderedDict()
_PACK_CACHE_MAX = 128

#: identity frontiers for batched path DPs, keyed by row count; read-only
_IDENTITY_CACHE: Dict[int, np.ndarray] = {}

#: broadcast "row r chose predecessor r" argmin matrices, keyed by shape;
#: the backtracking answer for any step taken from an identity frontier
_SELF_CHOICE_CACHE: Dict[Tuple[int, int], np.ndarray] = {}

#: alignment-matrix cache: (model pack key, elements, from states, to
#: states) → matrix of Table 5 re-alignment costs, shared across the
#: repeated fork/join joins of one level and across levels with equal pairs
_ALIGN_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_ALIGN_CACHE_MAX = 1024


def clear_pack_caches() -> None:
    """Drop the module-wide packed-tensor and alignment caches (tests)."""
    _PACK_CACHE.clear()
    _ALIGN_CACHE.clear()


def _identity(rows: int) -> np.ndarray:
    """The cached identity frontier: 0 on the diagonal, UNREACHABLE off it."""
    identity = _IDENTITY_CACHE.get(rows)
    if identity is None:
        identity = np.full((rows, rows), UNREACHABLE)
        np.fill_diagonal(identity, 0.0)
        _IDENTITY_CACHE[rows] = identity
    return identity


def _self_choice(rows: int, cols: int) -> np.ndarray:
    """Argmin matrix with ``choice[r, j] == r`` (identity-frontier steps)."""
    choice = _SELF_CHOICE_CACHE.get((rows, cols))
    if choice is None:
        choice = np.broadcast_to(np.arange(rows)[:, None], (rows, cols))
        _SELF_CHOICE_CACHE[(rows, cols)] = choice
    return choice


def _gather_indices(
    in_states: Tuple[State, ...], out_states: Tuple[PartitionType, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    key = (in_states, out_states)
    cached = _GATHER_MEMO.get(key)
    if cached is None:
        rows = np.array([_STATE_CODE[s] for s in in_states], dtype=np.intp)
        t_codes = np.array([_TYPE_CODE[t] for t in out_states], dtype=np.intp)
        cached = (_FAM_TABLE[rows[:, None], t_codes[None, :]], t_codes)
        _GATHER_MEMO[key] = cached
    return cached


class _Pack:
    """One level's packed step tensors plus derived per-stage gathers.

    ``gathers`` caches the (in-state × out-state) step-cost submatrix each
    layer stage needs — the fancy-index gather from the packed tensor is
    the same for every search over the same pack, so repeated plans skip
    it along with the pack itself.
    """

    __slots__ = ("cost", "alpha", "gathers")

    def __init__(self, cost: np.ndarray, alpha: np.ndarray):
        self.cost = cost
        self.alpha = alpha
        self.gathers: Dict[Tuple, np.ndarray] = {}

    def step_costs(
        self,
        row: int,
        in_states: Tuple[State, ...],
        out_states: Tuple[PartitionType, ...],
    ) -> np.ndarray:
        key = (row, in_states, out_states)
        gathered = self.gathers.get(key)
        if gathered is None:
            fam, t_codes = _gather_indices(in_states, out_states)
            gathered = self.cost[row][fam, t_codes[None, :]]
            self.gathers[key] = gathered
        return gathered


class _LayerDecision:
    """One layer stage's argmin matrix plus what backtracking needs."""

    __slots__ = ("name", "alpha", "fam", "t_codes", "out_states", "choice")

    def __init__(self, name, alpha, fam, t_codes, out_states, choice):
        self.name = name
        self.alpha = alpha          # the layer's packed (family, type) α grid
        self.fam = fam              # (S_in, S_out) packed family rows
        self.t_codes = t_codes      # (S_out,) type columns
        self.out_states = out_states
        self.choice = choice        # (R, S_out) winning in-state index

    def entries(self, row: int, i: int, j: int) -> Tuple[PlanEntry, ...]:
        alpha = float(self.alpha[self.fam[i, j], self.t_codes[j]])
        return (LayerAssignment(self.name, self.out_states[j], alpha),)


class _ParallelDecision:
    """One fork/join macro-stage's argmin matrices for lazy backtracking."""

    __slots__ = ("name", "in_states", "out_states", "paths", "nominal", "choice")

    def __init__(self, name, in_states, out_states, paths, nominal, choice):
        self.name = name
        self.in_states = in_states
        self.out_states = out_states
        # per path: None for an identity skip, else
        # (path decisions, path exit states, exit-choice matrix)
        self.paths = paths
        self.nominal = nominal
        self.choice = choice

    def entries(self, row: int, i: int, j: int) -> Tuple[PlanEntry, ...]:
        out: List[PlanEntry] = []
        for path_index, info in enumerate(self.paths):
            if info is None:
                # identity skip: the tensor exits still in the entry state;
                # nothing to record at the free network entry
                chosen: State = self.in_states[i]
            else:
                decisions, path_out, exit_choice = info
                exit_idx = int(exit_choice[i, j])
                out.extend(_backtrack(decisions, i, exit_idx))
                chosen = path_out[exit_idx]
            if chosen is not None:
                out.append(PathExit(self.name, path_index, chosen, self.nominal))
        out.append(JoinAlignment(self.name, self.out_states[j], self.nominal))
        return tuple(out)


def _backtrack(decisions, row: int, exit_idx: int) -> Tuple[PlanEntry, ...]:
    """Walk the recorded argmin matrices once, last stage to first."""
    groups = []
    j = exit_idx
    for decision in reversed(decisions):
        i = int(decision.choice[row, j])
        groups.append(decision.entries(row, i, j))
        j = i
    out: List[PlanEntry] = []
    for group in reversed(groups):
        out.extend(group)
    return tuple(out)


def _packed_tensors(
    stages: Sequence[ShardedStage], model: PairCostModel
) -> Tuple["_Pack", Dict[int, int]]:
    """Phase 1: the level's dense step tensors, with the module-wide cache."""
    layers = list(iter_layer_stages(stages))
    index = {id(stage): row for row, stage in enumerate(layers)}
    key = None
    if model.memoize:
        key = (model.pack_key(), tuple(st.workload.key() for st in layers))
        cached = _PACK_CACHE.get(key)
        if cached is not None:
            _PACK_CACHE.move_to_end(key)
            model.stats.vec_pack_cache_hits += 1
            return cached, index
        model.stats.vec_pack_cache_misses += 1
    pack = _Pack(*model.pack_step_tensors([st.workload for st in layers]))
    if key is not None:
        _PACK_CACHE[key] = pack
        while len(_PACK_CACHE) > _PACK_CACHE_MAX:
            _PACK_CACHE.popitem(last=False)
    return pack, index


def _align_matrix(
    model: PairCostModel,
    elements: float,
    from_states: Tuple[State, ...],
    to_states: Tuple[PartitionType, ...],
) -> np.ndarray:
    """Table 5 re-alignment costs as a (from, to) matrix, cached."""
    key = None
    if model.memoize:
        key = (model.pack_key(), elements, from_states, to_states)
        cached = _ALIGN_CACHE.get(key)
        if cached is not None:
            _ALIGN_CACHE.move_to_end(key)
            return cached
    matrix = np.array(
        [
            [alignment_cost(model, elements, frm, to) for to in to_states]
            for frm in from_states
        ]
    )
    if key is not None:
        _ALIGN_CACHE[key] = matrix
        while len(_ALIGN_CACHE) > _ALIGN_CACHE_MAX:
            _ALIGN_CACHE.popitem(last=False)
    return matrix


def _layer_step(stage, pack, index, space, space_fn, states, frontier):
    # ``space`` is pre-tupled once per search; only a per-layer restriction
    # needs normalizing here
    layer_space = tuple(space_fn(stage.workload)) if space_fn is not None else space
    row = index[id(stage)]
    step_costs = pack.step_costs(row, states, layer_space)
    if frontier is _IDENTITY_CACHE.get(len(states)):
        # first stage of a chain: row r of the identity frontier holds 0 at
        # state r and UNREACHABLE elsewhere, so the argmin is r itself and
        # the surviving cost is 0.0 + step — the step-cost gather verbatim
        new_frontier = step_costs
        choice = _self_choice(len(states), len(layer_space))
    else:
        cand = frontier[:, :, None] + step_costs[None, :, :]
        new_frontier, choice = masked_first_within_slack(cand)
    fam, t_codes = _gather_indices(states, layer_space)
    decision = _LayerDecision(stage.name, pack.alpha[row], fam, t_codes,
                              layer_space, choice)
    return layer_space, new_frontier, decision


def _parallel_step(stage, model, pack, index, space, space_fn,
                   states, frontier):
    out_states = space
    fork_elements = None
    for path in stage.paths:
        if path:
            fork_elements = first_workload(path).a_input_fm()
            break
    if fork_elements is None:
        raise ValueError(f"parallel stage {stage.name!r} has no weighted layers")

    stats = model.stats
    rows = len(states)
    # all entry states at once: one batched DP per path instead of one
    # scalar DP per (path, entry state)
    identity = _identity(rows)

    macro = np.zeros((rows, len(out_states)))
    paths: List[Optional[Tuple]] = []
    for path in stage.paths:
        if path:
            stats.vec_multipath_batches += 1
            stats.multipath_path_dp_runs += rows
            path_out, path_frontier, path_decisions = _run_chain(
                path, model, pack, index, space, space_fn, states, identity,
            )
            out_elements = last_workload(path).a_output_fm()
            align = _align_matrix(model, out_elements, path_out, out_states)
            aligned = path_frontier[:, :, None] + align[None, :, :]
            best, exit_choice = masked_first_within_slack(aligned)
            macro += best
            paths.append((path_decisions, path_out, exit_choice))
        else:
            # identity skip: re-align the fork tensor itself, still in the
            # entry state, to each join state
            macro += _align_matrix(model, fork_elements, states, out_states)
            paths.append(None)

    if frontier is identity:
        # same identity-entry shortcut as _layer_step: 0.0 + macro is macro
        new_frontier = macro
        choice = _self_choice(rows, len(out_states))
    else:
        cand = frontier[:, :, None] + macro[None, :, :]
        new_frontier, choice = masked_first_within_slack(cand)
    decision = _ParallelDecision(stage.name, states, out_states, paths,
                                 model.nominal_alpha(), choice)
    return out_states, new_frontier, decision


def _run_chain(stages, model, pack, index, space, space_fn,
               states, frontier):
    """Phase 2 over one stage chain; frontier rows are entry states."""
    decisions = []
    for stage in stages:
        if isinstance(stage, ShardedLayerStage):
            states, frontier, decision = _layer_step(
                stage, pack, index, space, space_fn, states, frontier
            )
        elif isinstance(stage, ShardedParallelStage):
            states, frontier, decision = _parallel_step(
                stage, model, pack, index, space, space_fn,
                states, frontier,
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage kind {type(stage).__name__}")
        decisions.append(decision)
    return states, frontier, decisions


def search_stages_vectorized(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    space: Sequence[PartitionType] = ALL_TYPES,
    space_fn: Optional[SpaceFn] = None,
) -> SearchResult:
    """Drop-in vectorized twin of :func:`~repro.core.dp_search.search_stages`.

    Same arguments, same :class:`~repro.plan.ir.SearchResult`, bit-identical
    entries, cost and exit state; see the module docstring for how.
    """
    space = tuple(space)
    if not space:
        raise ValueError("partition-type space must be non-empty")
    stages = list(stages)
    if not stages:
        return SearchResult(entries=(), cost=0.0, exit_state=None)

    stats = model.stats
    stats.vec_searches += 1
    with tracer.span("dpv.search", category="dp", stages=len(stages),
                     space=len(space)) as span:
        t_start = time.perf_counter_ns()
        pack, index = _packed_tensors(stages, model)
        t_packed = time.perf_counter_ns()
        stats.vec_pack_ns += t_packed - t_start

        # the 1×1 identity frontier is exactly [[0.0]] — the scalar search's
        # {None: 0} entry — and lets the first stage take the identity
        # shortcut like any path chain
        entry_states: Tuple[State, ...] = (None,)
        frontier = _identity(1)
        out_states, frontier, decisions = _run_chain(
            stages, model, pack, index, space, space_fn,
            entry_states, frontier,
        )

        # final exit: first-seen-wins over the frontier order, exactly the
        # scalar search's exits.items() scan
        final = frontier[0]
        best = 0
        for j in range(1, len(out_states)):
            if improves(float(final[j]), float(final[best])):
                best = j
        entries = _backtrack(decisions, 0, best)
        best_cost = float(final[best])
        stats.vec_recurrence_ns += time.perf_counter_ns() - t_packed
        span.set("cost", best_cost)
    return SearchResult(
        entries=entries,
        cost=best_cost,
        exit_state=out_states[best],
    )
