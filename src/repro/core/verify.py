"""Plan verification: structural and feasibility checks on a planned run.

A plan produced by this library is correct by construction, but plans also
arrive from JSON (:mod:`repro.core.serialize`) or hand edits, so the
runtime-facing API re-checks everything before execution:

* every weighted layer has an assignment at every level, with a valid type
  and an interior ratio, and alignment entries reference real parallel
  stages (delegated to :func:`repro.plan.validate.validate_level`);
* the plan tree mirrors the pairing tree;
* the fully-sharded leaf workloads fit each leaf group's HBM (Table 7).
"""

from __future__ import annotations

from typing import List

from ..hardware.cluster import GroupNode
from ..plan.validate import collect_structure, validate_level
from ..sim.memory import leaf_memory_report
from ..training.optimizers import SGD, OptimizerSpec
from .planner import PlannedExecution
from .stages import ShardedStage, iter_sharded_workloads, shard_stages


class PlanVerificationError(ValueError):
    """Raised by :func:`verify_planned` in strict mode."""


def verify_planned(
    planned: PlannedExecution,
    optimizer: OptimizerSpec = SGD,
    strict: bool = False,
) -> List[str]:
    """Check a planned execution; returns a list of issues (empty = ok).

    With ``strict=True`` the first batch of issues raises
    :class:`PlanVerificationError` instead.
    """
    issues: List[str] = []
    layer_names, parallel_paths = collect_structure(planned.stages)

    def visit(node: GroupNode, plan, stages: List[ShardedStage],
              path: str) -> None:
        if plan.level_plan is None or node.is_leaf:
            if node.is_leaf != plan.is_leaf and layer_names:
                issues.append(
                    f"{path}: plan and pairing tree disagree about being a leaf"
                )
            report = leaf_memory_report(stages, node.group,
                                        planned.dtype_bytes, optimizer)
            if not report.fits:
                issues.append(
                    f"{path}: leaf workload needs "
                    f"{report.total_bytes / 2**30:.2f} GiB but {node.group} "
                    f"has {report.capacity_bytes / 2**30:.2f} GiB"
                )
            return

        level_issues = validate_level(plan.level_plan, layer_names,
                                      parallel_paths)
        issues.extend(f"{path}: {issue}" for issue in level_issues)
        layer_entries = plan.level_plan.layers()
        missing = layer_names - {a.name for a in layer_entries}
        bad_alpha = any(not 0.0 < a.alpha < 1.0 for a in layer_entries)

        if plan.left is None or plan.right is None:
            issues.append(f"{path}: internal plan node missing children")
            return
        if node.left is None or node.right is None:
            issues.append(f"{path}: plan has levels below a pairing-tree leaf")
            return

        if missing or bad_alpha:
            return  # cannot shard further on incomplete/invalid assignments
        assignments = plan.level_plan.layer_assignments()
        left_stages = shard_stages(stages, assignments, "left")
        right_stages = shard_stages(stages, assignments, "right")
        visit(node.left, plan.left, left_stages, path + "L")
        visit(node.right, plan.right, right_stages, path + "R")

    visit(planned.tree, planned.plan, planned.stages, "root")

    if strict and issues:
        raise PlanVerificationError("; ".join(issues))
    return issues
