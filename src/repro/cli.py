"""Command-line interface: plan, simulate, sweep and reproduce figures.

Examples::

    python -m repro models
    python -m repro describe --model alexnet --batch 64
    python -m repro plan --model vgg19 --array hetero --out plan.json
    python -m repro plan --model vgg19 --backend greedy --out fast.json
    python -m repro plan-diff plan.json fast.json
    python -m repro simulate --plan plan.json
    python -m repro simulate --model resnet50 --scheme hypar --array tpu-v3:16
    python -m repro sweep --models alexnet,vgg11 --array hetero
    python -m repro figure --which fig7
    python -m repro warm --models alexnet,vgg11 --array hetero
    echo '{"model": "alexnet", "array": "hetero"}' | python -m repro serve
    python -m repro serve --shards 2 --port 7070
    python -m repro fleet-stats --port 7070 --format prometheus
    python -m repro warm --models alexnet,vgg11 --port 7070
    python -m repro service-stats --format prometheus
    python -m repro profile alexnet --out trace.json
    python -m repro simulate --model alexnet --trace sim_trace.json
    python -m repro simulate --model alexnet --telemetry-dir tele/
    python -m repro telemetry export --calibration --dir tele/ --out cal.json
    python -m repro calibrate cal.json --out profile.json
    python -m repro plan --model vgg19 --profile profile.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .baselines import SCHEME_ORDER, get_scheme
from .core.planner import Planner
from .core.serialize import load_plan, save_plan
from .core.verify import verify_planned
from .experiments.analysis import (
    render_breakdown,
    render_level_summary,
    root_level_breakdown,
)
from .experiments.figures import (
    figure5_heterogeneous,
    figure6_homogeneous,
    figure7_alexnet_types,
    figure8_hierarchy_sweep,
)
from .experiments.harness import sweep
from .experiments.reporting import format_speedup_table
from .hardware.accelerator import AcceleratorGroup, AcceleratorSpec, make_group
from .hardware.cluster import describe_tree
from .hardware.profile import ProfileError
from .hardware.presets import TPU_V2, TPU_V3, heterogeneous_array, homogeneous_array
from .models.registry import available_models, build_model
from .plan import available_backends, plan_diff
from .sim.executor import evaluate

_KNOWN_SPECS = {"tpu-v2": TPU_V2, "tpu-v3": TPU_V3}

#: default disk tier for the plan service commands (serve / warm / service-stats)
DEFAULT_CACHE_DIR = ".plan-cache"


def parse_array(text: str) -> AcceleratorGroup:
    """Parse an array spec: 'hetero', 'homo', or 'name:count,name:count'."""
    key = text.strip().lower()
    if key in ("hetero", "heterogeneous"):
        return heterogeneous_array()
    if key in ("homo", "homogeneous"):
        return homogeneous_array()
    members: List[AcceleratorSpec] = []
    for part in key.split(","):
        if ":" not in part:
            raise argparse.ArgumentTypeError(
                f"bad array component {part!r}; expected name:count"
            )
        name, count_text = part.split(":", 1)
        if name not in _KNOWN_SPECS:
            raise argparse.ArgumentTypeError(
                f"unknown accelerator {name!r}; known: {sorted(_KNOWN_SPECS)}"
            )
        try:
            count = int(count_text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(f"bad count in {part!r}") from exc
        members.extend(make_group(_KNOWN_SPECS[name], count).members)
    if not members:
        raise argparse.ArgumentTypeError(f"empty array spec {text!r}")
    return AcceleratorGroup(tuple(members))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AccPar (HPCA 2020) planner, simulator and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_option(p) -> None:
        p.add_argument(
            "--backend", choices=available_backends(), default=None,
            help="search backend (default: the scheme's own, the exact DP)",
        )

    def add_profile_option(p) -> None:
        p.add_argument(
            "--profile", default=None, metavar="PATH",
            help="hardware profile JSON ('repro calibrate' output); costs "
                 "use its calibrated effective rates instead of peak "
                 "datasheet numbers ('analytic' = the peak default)",
        )

    sub.add_parser("models", help="list the model zoo")

    p = sub.add_parser("describe", help="print a model's layers and shapes")
    p.add_argument("--model", required=True)
    p.add_argument("--batch", type=int, default=32)

    p = sub.add_parser("plan", help="plan a model on an array")
    p.add_argument("--model", required=True)
    p.add_argument("--array", type=parse_array, default="hetero")
    p.add_argument("--scheme", choices=SCHEME_ORDER, default="accpar")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)
    p.add_argument("--out", default=None, help="write the plan as JSON")
    p.add_argument("--breakdown", action="store_true",
                   help="print the root-level cost breakdown")
    add_backend_option(p)
    add_profile_option(p)

    p = sub.add_parser(
        "plan-diff",
        help="compare two plan JSON files decision-by-decision",
    )
    p.add_argument("plan_a", help="first plan JSON file")
    p.add_argument("plan_b", help="second plan JSON file")
    p.add_argument("--rel-tol", type=float, default=None,
                   help="relative tolerance for ratio comparison "
                        "(default: 1e-9)")

    p = sub.add_parser("simulate", help="simulate a plan or plan+simulate")
    p.add_argument("--plan", default=None, help="JSON plan from 'plan --out'")
    p.add_argument("--model", default=None)
    p.add_argument("--array", type=parse_array, default="hetero")
    p.add_argument("--scheme", choices=SCHEME_ORDER, default="accpar")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)
    p.add_argument("--trace", default=None,
                   help="write the simulated critical-path Chrome trace here")
    p.add_argument("--telemetry-dir", default=None,
                   help="record per-op timing events to this durable "
                        "telemetry store (see 'repro telemetry export "
                        "--calibration')")
    add_backend_option(p)
    add_profile_option(p)

    p = sub.add_parser(
        "profile",
        help="trace one planning run: Chrome trace JSON + self-time table",
    )
    p.add_argument("model", help="model name (see 'repro models')")
    p.add_argument("--array", type=parse_array, default="hetero")
    p.add_argument("--scheme", choices=SCHEME_ORDER, default="accpar")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)
    p.add_argument("--out", default=None,
                   help="write the planner-execution Chrome trace here")
    p.add_argument("--sim-trace", default=None,
                   help="also write the simulated-iteration Chrome trace here")
    add_backend_option(p)

    p = sub.add_parser("sweep", help="speedup table over models and schemes")
    p.add_argument("--models", required=True,
                   help="comma-separated model names")
    p.add_argument("--array", type=parse_array, default="hetero")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)

    p = sub.add_parser("figure", help="reproduce one of the paper's figures")
    p.add_argument("--which", required=True,
                   choices=["fig5", "fig6", "fig7", "fig8"])

    p = sub.add_parser("validate", help="verify a plan JSON file")
    p.add_argument("--plan", required=True)
    p.add_argument("--optimizer", choices=["sgd", "momentum", "adam"],
                   default="sgd")

    p = sub.add_parser(
        "serve",
        help="serve plan requests as JSON lines on stdin/stdout, or as a "
             "sharded TCP fleet with --shards",
    )
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="disk cache tier directory ('' disables persistence)")
    p.add_argument("--capacity", type=int, default=128,
                   help="in-memory LRU capacity (plans)")
    p.add_argument("--workers", type=int, default=None,
                   help="planning worker threads (default: CPU count)")
    p.add_argument("--shards", type=int, default=0,
                   help="run a fleet of N plan-service shards behind an "
                        "asyncio frontend (0 = classic single process)")
    p.add_argument("--port", type=int, default=None,
                   help="fleet mode: TCP port for the frontend (0 = "
                        "ephemeral; omit to keep serving stdin/stdout)")
    p.add_argument("--host", default="127.0.0.1",
                   help="fleet mode: frontend bind address")
    p.add_argument("--shard-mode", choices=["thread", "process"],
                   default="thread",
                   help="fleet mode: shards as threads in this process or "
                        "as isolated OS processes")
    p.add_argument("--trace", action="store_true",
                   help="fleet mode: collect spans on every shard for the "
                        "'trace' op")
    p.add_argument("--restart", action="store_true",
                   help="fleet mode (process shards): supervise crashed "
                        "shard processes and restart them with backoff")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="fleet mode: enable the deterministic fault "
                        "injector on every shard, e.g. "
                        "'seed=42,drop=0.05,delay=0.1,delay_ms=20,"
                        "corrupt=0.01' (also unlocks the chaos_kill / "
                        "chaos_freeze wire ops); equivalent to setting "
                        "REPRO_CHAOS on the shards. NEVER in production")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="fleet mode: seconds between frontend health "
                        "probes of each shard (0 disables)")
    p.add_argument("--failure-threshold", type=int, default=3,
                   help="fleet mode: consecutive probe/request failures "
                        "before a shard leaves the routing ring")
    p.add_argument("--retry", default=None, metavar="SPEC",
                   help="fleet mode: the frontend's transport retry "
                        "budget, e.g. 'attempts=3,base=0.02,max=0.1,"
                        "seed=0' (omitted keys keep the defaults; "
                        "attempts=1 disables retries so transport errors "
                        "fail over immediately)")
    p.add_argument("--telemetry-dir", default=None,
                   help="durable request telemetry: append JSONL event "
                        "segments under this directory (fleet mode uses "
                        "frontend/ and shard-<name>/ subdirectories); "
                        "equivalent to setting REPRO_TELEMETRY_DIR")
    p.add_argument("--slo", default=None, metavar="SPEC",
                   help="SLO targets for the burn-rate gauges, e.g. "
                        "'latency_ms=250,objective=0.99,window_fast_s=300,"
                        "window_slow_s=3600' (omitted keys keep the "
                        "defaults)")
    add_profile_option(p)

    p = sub.add_parser("warm", help="pre-populate the plan cache")
    p.add_argument("--models", required=True,
                   help="comma-separated model names")
    p.add_argument("--array", default="hetero",
                   help="array spec (e.g. hetero, homo, tpu-v3:16)")
    p.add_argument("--scheme", choices=SCHEME_ORDER, default="accpar")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p.add_argument("--capacity", type=int, default=128)
    p.add_argument("--port", type=int, default=None,
                   help="warm a running fleet frontend at this port instead "
                        "of a local cache (replicates to every shard)")
    p.add_argument("--host", default="127.0.0.1",
                   help="fleet frontend host (with --port)")
    add_backend_option(p)
    add_profile_option(p)

    p = sub.add_parser(
        "calibrate",
        help="fit a repro.hardware.profile/v1 JSON from a telemetry "
             "calibration export",
    )
    p.add_argument("export",
                   help="calibration export JSON, from 'repro telemetry "
                        "export --calibration --out <file>'")
    p.add_argument("--out", required=True,
                   help="write the fitted profile JSON here")
    p.add_argument("--name", default="calibrated",
                   help="profile name embedded in the document")
    p.add_argument("--dtype-bytes", type=int, default=2,
                   help="bytes per element assumed when converting recorded "
                        "element counts to bytes (default: bfloat16)")

    p = sub.add_parser(
        "fleet-stats",
        help="query a running fleet frontend for frontend + per-shard stats",
    )
    p.add_argument("--port", type=int, required=True,
                   help="fleet frontend port")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--format", choices=["text", "json", "prometheus"],
                   default="text",
                   help="text summary, raw JSON, or Prometheus exposition "
                        "with per-shard {shard=...} labels")

    p = sub.add_parser("service-stats",
                       help="summarize the disk cache tier and last session")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p.add_argument("--format", choices=["text", "json", "prometheus"],
                   default="text",
                   help="text summary, raw JSON snapshot, or Prometheus "
                        "text exposition")

    p = sub.add_parser(
        "telemetry",
        help="inspect a durable telemetry store (tail / summary / export)",
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    for name, help_text in (
        ("tail", "print the newest events as JSON lines"),
        ("summary", "aggregate the store: outcomes, latency, SLO inputs"),
        ("export", "dump all events (or --calibration per-op timings)"),
    ):
        tp = tsub.add_parser(name, help=help_text)
        tp.add_argument("--dir", default=None,
                        help="telemetry store directory (default: "
                             "$REPRO_TELEMETRY_DIR)")
        if name == "tail":
            tp.add_argument("-n", "--lines", type=int, default=20,
                            help="how many trailing events to print")
            tp.add_argument("--type", default=None, dest="event_type",
                            help="only events of this type (request, "
                                 "op_timing, search, chaos)")
        if name == "export":
            tp.add_argument("--calibration", action="store_true",
                            help="aggregate op_timing events into the "
                                 "per-hardware calibration format")
            tp.add_argument("--out", default=None,
                            help="write JSON here instead of stdout")

    p = sub.add_parser(
        "top",
        help="live fleet dashboard: per-shard QPS, latency, health, SLO burn",
    )
    p.add_argument("--port", type=int, required=True,
                   help="fleet frontend port")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after this many frames (default: run until "
                        "interrupted)")

    p = sub.add_parser("report", help="write a full markdown report")
    p.add_argument("--model", required=True)
    p.add_argument("--array", type=parse_array, default="hetero")
    p.add_argument("--scheme", choices=SCHEME_ORDER, default="accpar")
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--levels", type=int, default=None)
    p.add_argument("--out", default=None, help="output .md path (default stdout)")
    p.add_argument("--what-if", action="store_true",
                   help="include the per-layer type-sensitivity table")
    add_backend_option(p)

    return parser


def _cmd_models() -> int:
    for name in available_models():
        print(name)
    return 0


def _cmd_describe(args) -> int:
    network = build_model(args.model)
    print(network.describe(args.batch))
    workloads = network.workloads(args.batch)
    params = sum(w.weight.size for w in workloads)
    print(f"\n{len(workloads)} weighted layers, {params / 1e6:.2f}M kernel weights")
    return 0


def _load_profile_arg(args):
    """Resolve ``--profile`` into a profile object, or None when unset.

    The analytic profile normalizes to None — it *is* the default — so
    downstream code has a single spelling for "peak rates".
    """
    value = getattr(args, "profile", None)
    if not value:
        return None
    from .hardware.profile import resolve_profile

    profile = resolve_profile(value)
    return None if getattr(profile, "is_analytic", False) else profile


def _cmd_plan(args) -> int:
    network = build_model(args.model)
    profile = _load_profile_arg(args)
    planner = Planner(args.array,
                      get_scheme(args.scheme, backend=args.backend,
                                 profile=profile),
                      levels=args.levels)
    planned = planner.plan(network, args.batch)
    issues = verify_planned(planned)

    print(f"planned {args.model} with {args.scheme} over {args.array}")
    if profile is not None:
        print(f"profile: {profile.name} "
              f"(calibrated: {', '.join(profile.spec_names())})")
    print(describe_tree(planned.tree, max_depth=1))
    print(f"hierarchy levels: {planned.hierarchy_levels()}")
    for name, lp in planned.root_level_plan.layer_assignments().items():
        print(f"  {name:<14} {lp.ptype!s:<9} alpha={lp.ratio:.3f}")
    if args.breakdown:
        print()
        print(render_breakdown(root_level_breakdown(planned)))
    if issues:
        print("\nverification issues:")
        for issue in issues:
            print(f"  - {issue}")
        return 1
    if args.out:
        save_plan(planned, args.out)
        print(f"\nplan written to {args.out}")
    return 0


def _cmd_simulate(args) -> int:
    telemetry = None
    if getattr(args, "telemetry_dir", None):
        from .obs import telemetry as telemetry_store

        telemetry = telemetry_store.install(args.telemetry_dir)
    profile = _load_profile_arg(args)
    if args.plan:
        planned = load_plan(args.plan)
    elif args.model:
        planner = Planner(args.array,
                          get_scheme(args.scheme, backend=args.backend,
                                     profile=profile),
                          levels=args.levels)
        planned = planner.plan(build_model(args.model), args.batch)
    else:
        print("simulate needs --plan or --model", file=sys.stderr)
        return 2
    report = evaluate(planned, profile=profile)
    if telemetry is not None:
        print(f"telemetry: {telemetry.events_written} event(s) -> "
              f"{args.telemetry_dir}", file=sys.stderr)
    print(f"{planned.network_name} / {planned.scheme} / batch {planned.batch}")
    print(render_level_summary(report))
    print(f"\nthroughput: {report.throughput:.1f} samples/s")
    mem = report.memory_worst
    if mem is not None:
        print(f"worst leaf memory: {mem.total_bytes / 2**30:.3f} GiB "
              f"({mem.utilization * 100:.2f}%) fits={mem.fits}")
    if args.trace:
        from .sim.timeline import save_chrome_trace

        save_chrome_trace(planned, args.trace)
        print(f"simulated critical-path trace written to {args.trace}")
    return 0


def _cmd_profile(args) -> int:
    """Trace one planning run; emit Chrome trace JSON + a profile table."""
    from .obs import chrome_trace_document, render_profile, save_trace_document
    from .obs.tracing import tracer

    network = build_model(args.model)
    planner = Planner(args.array, get_scheme(args.scheme, backend=args.backend),
                      levels=args.levels)

    was_enabled = tracer.enabled
    tracer.enable()
    tracer.clear()
    try:
        t0 = time.perf_counter()
        planned = planner.plan(network, args.batch)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        spans = tracer.drain()
    finally:
        tracer.enabled = was_enabled

    print(f"profiled {args.model} / {args.scheme} on {args.array}: "
          f"{elapsed_ms:.1f} ms, {len(spans)} spans"
          + (f" ({tracer.spans_dropped} dropped)" if tracer.spans_dropped else ""))
    print()
    print(render_profile(spans, title=f"planner profile ({args.model})"))
    if args.out:
        save_trace_document(chrome_trace_document(spans), args.out)
        print(f"\nplanner trace written to {args.out} "
              "(open in Perfetto or chrome://tracing)")
    if args.sim_trace:
        from .sim.timeline import save_chrome_trace

        save_chrome_trace(planned, args.sim_trace)
        print(f"simulated-iteration trace written to {args.sim_trace}")
    return 0


def _cmd_sweep(args) -> int:
    models = [m.strip() for m in args.models.split(",") if m.strip()]
    table = sweep(models, args.array, batch=args.batch, levels=args.levels)
    print(format_speedup_table(table, f"speedups on {args.array}"))
    return 0


def _cmd_figure(args) -> int:
    if args.which == "fig5":
        print(format_speedup_table(figure5_heterogeneous(),
                                   "Figure 5 (heterogeneous)"))
    elif args.which == "fig6":
        print(format_speedup_table(figure6_homogeneous(),
                                   "Figure 6 (homogeneous)"))
    elif args.which == "fig7":
        print(figure7_alexnet_types().rendered())
    else:
        print(figure8_hierarchy_sweep().rendered())
    return 0


def _cmd_plan_diff(args) -> int:
    a = load_plan(args.plan_a)
    b = load_plan(args.plan_b)
    kwargs = {} if args.rel_tol is None else {"rel_tol": args.rel_tol}
    differences = plan_diff(a.plan, b.plan, **kwargs)
    if not differences:
        print(f"{args.plan_a} and {args.plan_b} make identical decisions")
        return 0
    print(f"{len(differences)} difference(s) between "
          f"{args.plan_a} and {args.plan_b}:")
    for difference in differences:
        print(f"  - {difference}")
    return 1


def _cmd_validate(args) -> int:
    from .training.optimizers import get_optimizer

    planned = load_plan(args.plan)
    issues = verify_planned(planned, optimizer=get_optimizer(args.optimizer))
    if not issues:
        print(f"{args.plan}: OK "
              f"({planned.network_name}, {planned.scheme}, "
              f"{planned.hierarchy_levels()} levels)")
        return 0
    print(f"{args.plan}: {len(issues)} issue(s)")
    for issue in issues:
        print(f"  - {issue}")
    return 1


def _build_service(cache_dir, capacity: int, workers=None,
                   slo=None, telemetry=None, default_profile=None):
    from .service import PlanCache, PlanService

    disk_dir = cache_dir if cache_dir else None
    return PlanService(cache=PlanCache(capacity=capacity, disk_dir=disk_dir),
                       workers=workers, slo=slo, telemetry=telemetry,
                       default_profile=default_profile)


def _cmd_serve(args) -> int:
    from .obs.logging import configure_json_logging
    from .service.server import serve_loop

    # stdout carries the JSON-lines protocol; structured logs (e.g. the
    # slow-request warning, with trace id) go to stderr as JSON too
    configure_json_logging(stream=sys.stderr)
    slo = getattr(args, "slo", None)
    if slo is not None:  # fail fast on a bad spec, before any spawn
        from .obs.slo import SLOConfig
        SLOConfig.parse(slo)
    # resolve the profile up front so a broken file fails fast in both the
    # single-process and fleet paths (fleet shards re-load it from the path)
    default_profile = _load_profile_arg(args)
    if args.shards:
        return _cmd_serve_fleet(args)
    telemetry = None
    if getattr(args, "telemetry_dir", None):
        from .obs import telemetry as telemetry_store

        telemetry = telemetry_store.install(args.telemetry_dir)
    service = _build_service(args.cache_dir, args.capacity, args.workers,
                             slo=slo, telemetry=telemetry,
                             default_profile=default_profile)
    try:
        served = serve_loop(service, sys.stdin, sys.stdout)
    finally:
        service.close()
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


def _cmd_serve_fleet(args) -> int:
    """Fleet mode: N shards behind the asyncio frontend (see docs/serving.md).

    With ``--port`` the frontend listens on TCP (v2 frames, with the v1
    JSON-lines sniff) until a shutdown op arrives; without it the frontend
    still comes up but requests are read from stdin and answered on stdout,
    exactly like the single-process loop — the fleet as a drop-in upgrade.
    """
    from .fleet import FleetFrontend, ShardSupervisor
    from .obs.tracing import tracer

    if args.trace:
        tracer.enable()  # the frontend's own spans; shards via trace=True
    chaos = getattr(args, "chaos", None)
    if chaos is not None:  # fail fast on a bad spec, before any spawn
        from .fleet import ChaosSpec
        ChaosSpec.parse(chaos)
    retry = getattr(args, "retry", None)
    if retry is not None:
        from .fleet import RetryPolicy
        retry = RetryPolicy.parse(retry)
    slo = getattr(args, "slo", None)
    telemetry_dir = getattr(args, "telemetry_dir", None)
    frontend_telemetry = None
    if telemetry_dir:
        from pathlib import Path

        from .obs import telemetry as telemetry_store

        frontend_telemetry = telemetry_store.TelemetryWriter(
            Path(telemetry_dir) / "frontend")
    supervisor = ShardSupervisor(
        args.shards,
        cache_dir=args.cache_dir or None,
        mode=args.shard_mode,
        capacity=args.capacity,
        workers=args.workers,
        fallback_backend="greedy",
        trace=args.trace,
        chaos=chaos,
        restart=bool(getattr(args, "restart", False)
                     and args.shard_mode == "process"),
        telemetry_dir=telemetry_dir,
        slo=slo,
        profile_path=getattr(args, "profile", None),
    )
    with supervisor:
        frontend = FleetFrontend(
            supervisor.handles,
            host=args.host,
            port=args.port if args.port is not None else 0,
            heartbeat_interval_s=getattr(args, "heartbeat_interval", 1.0),
            failure_threshold=getattr(args, "failure_threshold", 3),
            retry=retry,
            slo=slo,
            telemetry=frontend_telemetry,
        )
        with frontend:
            shard_list = ", ".join(
                f"{h.name}@{h.host}:{h.port}" for h in supervisor.handles)
            print(f"fleet up: frontend {frontend.host}:{frontend.port} "
                  f"({args.shard_mode} shards: {shard_list})",
                  file=sys.stderr)
            sys.stderr.flush()
            try:
                if args.port is not None:
                    frontend.wait()  # TCP only; a shutdown op ends this
                else:
                    served = frontend.serve_stdin(sys.stdin, sys.stdout)
                    print(f"served {served} request(s)", file=sys.stderr)
            except KeyboardInterrupt:
                pass
    if frontend_telemetry is not None:
        frontend_telemetry.close()
    return 0


def _cmd_warm(args) -> int:
    from .service import PlanRequest
    from .service.server import warm_cache

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    if not models:
        print("warm needs at least one model", file=sys.stderr)
        return 2
    if args.port is not None:
        return _cmd_warm_fleet(args, models)
    if isinstance(args.array, str):
        args.array = parse_array(args.array)
    profile = _load_profile_arg(args)
    service = _build_service(args.cache_dir, args.capacity)
    try:
        requests = [
            PlanRequest(model=m, array=args.array, batch=args.batch,
                        scheme=args.scheme, levels=args.levels,
                        backend=args.backend, profile=profile)
            for m in models
        ]
        responses = warm_cache(service, requests)
    finally:
        service.close()
    for response in responses:
        print(f"{response.planned.network_name:<12} {response.source:<8} "
              f"{response.latency_s * 1e3:8.1f} ms  {response.fingerprint}")
    print(f"cache: {len(service.cache)} in memory, "
          f"{len(service.cache.disk_keys())} on disk")
    return 0


def _cmd_warm_fleet(args, models: List[str]) -> int:
    """Warm a running fleet: plan on each owner, replicate to every shard."""
    from .fleet import FleetClient

    profile = _load_profile_arg(args)
    profile_doc = None
    if profile is not None:
        from .hardware.profile import profile_to_doc

        profile_doc = profile_to_doc(profile)
    items = [
        {"model": m, "array": args.array, "batch": args.batch,
         "scheme": args.scheme, "levels": args.levels,
         "backend": args.backend,
         **({"profile": profile_doc} if profile_doc is not None else {})}
        for m in models
    ]
    with FleetClient(args.host, args.port) as client:
        reply = client.warm(items)
    for item in reply.get("items", []):
        if item.get("ok"):
            print(f"{item.get('fingerprint')}  shard {item.get('shard')}  "
                  f"{item.get('source'):<8} replicated to "
                  f"{item.get('replicated')} peer(s)")
        else:
            print(f"FAILED: {item.get('error')}")
    return 0 if reply.get("ok") else 1


def _cmd_calibrate(args) -> int:
    """Fit a hardware profile from a telemetry calibration export."""
    import json
    from pathlib import Path

    from .calib import profile_from_export
    from .hardware.profile import ProfileError, save_profile

    try:
        doc = json.loads(Path(args.export).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read calibration export {args.export}: {exc}",
              file=sys.stderr)
        return 2
    try:
        profile = profile_from_export(doc, name=args.name,
                                      dtype_bytes=args.dtype_bytes)
    except ProfileError as exc:
        print(f"calibration failed: {exc}", file=sys.stderr)
        return 1
    save_profile(profile, args.out)
    print(f"profile {profile.name!r} written to {args.out}")
    for sp in profile.specs:
        rates = ", ".join(f"{kind}={rate / 1e12:.2f}T"
                          for kind, rate in sp.compute_rates)
        curve = (f"{len(sp.bandwidth_efficiency)}-point bw curve"
                 if sp.bandwidth_efficiency else "flat bw curve")
        print(f"  {sp.spec}: FLOP/s {rates}; {curve}; "
              f"latency {sp.transfer_latency_s * 1e6:.1f}us/transfer")
    meta = dict(profile.meta)
    for key in sorted(k for k in meta if k.startswith("skipped:")):
        print(f"  skipped {key.split(':', 1)[1]}: {meta[key]}")
    return 0


def _cmd_fleet_stats(args) -> int:
    import json

    from .fleet import FleetClient
    from .obs.registry import render_prometheus

    with FleetClient(args.host, args.port) as client:
        stats = client.stats()
    if args.format == "json":
        print(json.dumps(stats, indent=2))
        return 0
    frontend = stats.get("frontend", {})
    shards = stats.get("shards", {}) or {}
    if args.format == "prometheus":
        # frontend series carry {component="frontend"}; each shard's carry
        # {shard="<name>"} so one scrape yields distinguishable series
        out = [render_prometheus({"metrics": frontend.get("metrics", {})},
                                 include_defaults=False,
                                 labels={"component": "frontend"})]
        for name in sorted(shards):
            snapshot = shards[name]
            if snapshot:
                out.append(render_prometheus(snapshot,
                                             labels={"shard": name}))
        sys.stdout.write("".join(out))
        return 0
    admission = frontend.get("admission", {})
    ring = frontend.get("ring", {})
    print(f"fleet: {len(shards)} shard(s), ring vnodes "
          f"{ring.get('vnodes')}, queue depth {frontend.get('queue_depth')}")
    counters = (frontend.get("metrics") or {}).get("counters") or {}
    for name in sorted(counters):
        print(f"  frontend.{name:<20} {counters[name]}")
    print(f"  admission: est_hit={admission.get('est_hit_ms')}ms "
          f"est_cold={admission.get('est_cold_ms')}ms "
          f"decisions={admission.get('decisions')}")
    slo = frontend.get("slo")
    if slo:
        from .obs.slo import render_slo_lines

        print(render_slo_lines(slo, title="  slo (frontend)"))
    telemetry = frontend.get("telemetry")
    if telemetry:
        print(f"  telemetry: events={telemetry.get('events_written')} "
              f"dropped={telemetry.get('events_dropped')} "
              f"segment={telemetry.get('segment_seq')} "
              f"dir={telemetry.get('directory')}")
    for name in sorted(shards):
        snapshot = shards[name] or {}
        shard_counters = (snapshot.get("metrics") or {}).get("counters") or {}
        cache = snapshot.get("cache") or {}
        print(f"  shard {name}: requests={shard_counters.get('requests', 0)} "
              f"hits_memory={shard_counters.get('hits_memory', 0)} "
              f"misses={shard_counters.get('misses', 0)} "
              f"cache_size={cache.get('size', cache.get('memory_entries', 0))}")
    return 0


def _cmd_service_stats(args) -> int:
    import json

    from .obs.registry import render_prometheus
    from .service.server import describe_cache_dir, load_stats_snapshot

    if args.format == "text":
        print(describe_cache_dir(args.cache_dir))
        return 0
    # json / prometheus render the last session's machine-readable snapshot;
    # an absent snapshot renders as all-zero canonical series rather than an
    # error so scrapers see a stable series set from the first scrape on
    snapshot = load_stats_snapshot(args.cache_dir) or {}
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _resolve_telemetry_dir(args) -> Optional[str]:
    import os

    from .obs.telemetry import TELEMETRY_ENV

    directory = getattr(args, "dir", None) or os.environ.get(TELEMETRY_ENV)
    if not directory:
        print("telemetry needs --dir or REPRO_TELEMETRY_DIR", file=sys.stderr)
    return directory


def _cmd_telemetry(args) -> int:
    import json

    from .obs import telemetry as telemetry_store

    directory = _resolve_telemetry_dir(args)
    if not directory:
        return 2

    if args.telemetry_command == "tail":
        types = (args.event_type,) if args.event_type else None
        events = telemetry_store.read_events(directory, types=types)
        for event in events[-max(0, args.lines):]:
            print(json.dumps(event, sort_keys=True))
        return 0

    if args.telemetry_command == "summary":
        summary = telemetry_store.summarize(directory)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    # export
    if args.calibration:
        document = telemetry_store.calibration_export(directory)
    else:
        report = telemetry_store.ReadReport()
        document = {
            "directory": str(directory),
            "events": list(telemetry_store.iter_events(directory,
                                                       report=report)),
            "corrupt_lines": report.corrupt_lines,
        }
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        from .ioutil import atomic_write_text

        atomic_write_text(args.out, text + "\n")
        print(f"export written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_top(args) -> int:
    from .obs.top import run_top

    return run_top(args.host, args.port, interval_s=args.interval,
                   iterations=args.iterations)


def _cmd_report(args) -> int:
    from .experiments.analysis import type_histogram

    planner = Planner(args.array, get_scheme(args.scheme, backend=args.backend),
                      levels=args.levels)
    planned = planner.plan(build_model(args.model), args.batch)
    report = evaluate(planned)

    lines = [
        f"# {planned.network_name} on {args.array}",
        "",
        f"- scheme: **{planned.scheme}**, batch {planned.batch}, "
        f"{planned.hierarchy_levels()} hierarchy levels",
        f"- simulated iteration: **{report.total_time * 1e3:.3f} ms** "
        f"({report.throughput:.1f} samples/s)",
    ]
    mem = report.memory_worst
    if mem is not None:
        lines.append(
            f"- worst leaf memory: {mem.total_bytes / 2**30:.3f} GiB "
            f"({mem.utilization * 100:.2f}% of capacity, fits={mem.fits})"
        )
    histogram = type_histogram(planned)
    lines.append(
        "- partition types across levels: "
        + ", ".join(f"{t.value}: {n}" for t, n in histogram.items())
    )
    lines += ["", "## Root-level plan", "", "```"]
    lines.append(render_breakdown(root_level_breakdown(planned)))
    lines += ["```", "", "## Per-level communication", "", "```"]
    lines.append(render_level_summary(report))
    lines += ["```", ""]
    if args.what_if:
        from .experiments.analysis import layer_type_sensitivity, render_what_if

        lines += ["## Layer-type sensitivity", "", "```"]
        lines.append(render_what_if(layer_type_sensitivity(planned)))
        lines += ["```", ""]

    document = "\n".join(lines)
    if args.out:
        from .ioutil import atomic_write_text

        atomic_write_text(args.out, document)
        print(f"report written to {args.out}")
    else:
        print(document)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": lambda: _cmd_models(),
        "describe": lambda: _cmd_describe(args),
        "plan": lambda: _cmd_plan(args),
        "plan-diff": lambda: _cmd_plan_diff(args),
        "simulate": lambda: _cmd_simulate(args),
        "profile": lambda: _cmd_profile(args),
        "sweep": lambda: _cmd_sweep(args),
        "figure": lambda: _cmd_figure(args),
        "validate": lambda: _cmd_validate(args),
        "report": lambda: _cmd_report(args),
        "serve": lambda: _cmd_serve(args),
        "warm": lambda: _cmd_warm(args),
        "calibrate": lambda: _cmd_calibrate(args),
        "fleet-stats": lambda: _cmd_fleet_stats(args),
        "service-stats": lambda: _cmd_service_stats(args),
        "telemetry": lambda: _cmd_telemetry(args),
        "top": lambda: _cmd_top(args),
    }
    try:
        return handlers[args.command]()
    except BrokenPipeError:  # e.g. `repro models | head`
        return 0
    except ProfileError as exc:
        # a profile that doesn't cover the array (or a malformed file) is a
        # usage error, not a crash: say what's wrong and which specs the
        # profile does cover
        print(f"profile error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
