"""repro — a reproduction of AccPar (HPCA 2020).

AccPar is a principled, systematic method for partitioning the tensors of
DNN *training* across arrays of heterogeneous deep-learning accelerators.
This package implements the complete system described in the paper:

* the complete three-type tensor-partitioning space (Section 3);
* the computation + communication cost model (Section 4);
* the layer-wise dynamic-programming search with multi-path support and
  flexible heterogeneous partitioning ratios (Section 5);
* the baselines it is compared against — data parallelism, "One Weird
  Trick" and HyPar;
* a trace-driven performance simulator of TPU-v2/TPU-v3 accelerator arrays
  (Section 6.1) and the experiment harness regenerating the paper's
  evaluation figures.

Quickstart::

    from repro import AccParPlanner, build_model, heterogeneous_array, evaluate

    planner = AccParPlanner(heterogeneous_array())
    planned = planner.plan(build_model("vgg19"), batch=512)
    report = evaluate(planned)
    print(report.total_time, report.throughput)
"""

from .baselines import (
    DataParallelScheme,
    HyParScheme,
    OwtScheme,
    SCHEME_ORDER,
    get_scheme,
)
from .core import (
    ALL_TYPES,
    AccParPlanner,
    AccParScheme,
    HYPAR_TYPES,
    HierarchicalPlan,
    LayerPartition,
    LevelPlan,
    PairCostModel,
    PartitionType,
    Phase,
    PlannedExecution,
    Planner,
    ShardedWorkload,
)
from .graph import (
    Add,
    BatchNorm,
    Conv2d,
    Dropout,
    FeatureMap,
    Flatten,
    GlobalAvgPool,
    Input,
    LayerWorkload,
    Linear,
    Network,
    Pool2d,
    ReLU,
    TensorShape,
    validate_network,
)
from .hardware import (
    AcceleratorGroup,
    AcceleratorSpec,
    TPU_V2,
    TPU_V3,
    bisection_tree,
    heterogeneous_array,
    homogeneous_array,
    make_group,
)
from .models import PAPER_MODELS, available_models, build_model, register_model
from .plan import (
    JoinAlignment,
    LayerAssignment,
    PathExit,
    available_backends,
    get_backend,
    plan_diff,
    validate_plan,
)
from .service import (
    MetricsRegistry,
    PlanCache,
    PlanRequest,
    PlanResponse,
    PlanService,
)
from .sim import EngineConfig, MemoryReport, SimReport, evaluate

__version__ = "1.0.0"

__all__ = [
    "ALL_TYPES",
    "AcceleratorGroup",
    "AcceleratorSpec",
    "AccParPlanner",
    "AccParScheme",
    "Add",
    "BatchNorm",
    "Conv2d",
    "DataParallelScheme",
    "Dropout",
    "EngineConfig",
    "FeatureMap",
    "Flatten",
    "GlobalAvgPool",
    "HYPAR_TYPES",
    "HierarchicalPlan",
    "HyParScheme",
    "Input",
    "JoinAlignment",
    "LayerAssignment",
    "LayerPartition",
    "LayerWorkload",
    "LevelPlan",
    "PathExit",
    "Linear",
    "MemoryReport",
    "MetricsRegistry",
    "Network",
    "OwtScheme",
    "PAPER_MODELS",
    "PlanCache",
    "PlanRequest",
    "PlanResponse",
    "PlanService",
    "PairCostModel",
    "PartitionType",
    "Phase",
    "PlannedExecution",
    "Planner",
    "Pool2d",
    "ReLU",
    "SCHEME_ORDER",
    "SimReport",
    "ShardedWorkload",
    "TPU_V2",
    "TPU_V3",
    "TensorShape",
    "available_backends",
    "available_models",
    "bisection_tree",
    "build_model",
    "evaluate",
    "get_backend",
    "get_scheme",
    "plan_diff",
    "validate_plan",
    "heterogeneous_array",
    "homogeneous_array",
    "make_group",
    "register_model",
    "validate_network",
    "__version__",
]
