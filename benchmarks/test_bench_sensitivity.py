"""Sensitivity benches: batch size, link bandwidth and optimizer choice.

Extensions beyond the paper's figures that probe the mechanisms its
Section 6 analysis describes (model-vs-data partitioning trade-off, the
communication bottleneck, and optimizer locality).
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import (
    batch_sweep,
    bandwidth_sweep,
    optimizer_sweep,
)
from repro.hardware import heterogeneous_array

from conftest import save_artifact


@pytest.mark.benchmark(group="sensitivity")
def test_batch_size_sensitivity(benchmark, results_dir):
    array = heterogeneous_array(16, 16)

    series = benchmark.pedantic(
        lambda: batch_sweep("alexnet", array, batches=(64, 128, 256, 512, 1024)),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    rows = []
    for idx, batch in enumerate(series.x_values):
        rows.append(
            [f"{int(batch)}"]
            + [f"{series.speedups[s][idx]:.2f}x" for s in series.speedups]
        )
    text = format_table(
        ["batch"] + list(series.speedups),
        rows,
        title="Speedup over DP vs global mini-batch (alexnet, heterogeneous)",
    )
    save_artifact(results_dir, "sensitivity_batch.txt", text)

    # AccPar dominates at every batch size
    for idx in range(len(series.x_values)):
        best = max(series.speedups[s][idx] for s in series.speedups)
        assert series.speedups["accpar"][idx] == pytest.approx(best)


@pytest.mark.benchmark(group="sensitivity")
def test_bandwidth_sensitivity(benchmark, results_dir):
    array = heterogeneous_array(8, 8)

    series = benchmark.pedantic(
        lambda: bandwidth_sweep("vgg11", array,
                                factors=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
                                batch=256),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    rows = []
    for idx, factor in enumerate(series.x_values):
        rows.append(
            [f"{factor:g}x"]
            + [f"{series.speedups[s][idx]:.2f}x" for s in series.speedups]
        )
    text = format_table(
        ["link speed"] + list(series.speedups),
        rows,
        title="Speedup over DP vs link bandwidth (vgg11, heterogeneous)",
    )
    save_artifact(results_dir, "sensitivity_bandwidth.txt", text)

    # as links speed up, communication-avoiding planning buys less
    acc = series.speedups["accpar"]
    assert acc[-1] < acc[0]


@pytest.mark.benchmark(group="sensitivity")
def test_optimizer_sensitivity(benchmark, results_dir):
    array = heterogeneous_array(8, 8)

    impacts = benchmark.pedantic(
        lambda: optimizer_sweep("vgg19", array, batch=512),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    rows = [
        [i.optimizer, f"{i.total_time * 1e3:.3f} ms",
         f"{i.comm_time * 1e3:.3f} ms", f"{i.memory_bytes / 2**30:.3f} GiB"]
        for i in impacts
    ]
    text = format_table(
        ["optimizer", "iteration", "comm", "worst-leaf memory"],
        rows,
        title="Optimizer impact under the same AccPar plan (vgg19)",
    )
    save_artifact(results_dir, "sensitivity_optimizer.txt", text)

    comm_times = {round(i.comm_time, 12) for i in impacts}
    assert len(comm_times) == 1  # updates are local: comm never changes
