"""Cost-landscape bench: place every scheme inside the full design space.

AlexNet has 8 weighted layers → 3^8 = 6561 possible plans: small enough to
enumerate at the root split of the heterogeneous array.  The bench reports
where DP and OWT fall in that distribution and confirms the Eq. 9 DP finds
the exact global optimum — quantifying "how much was on the table".
"""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.stages import flatten_to_chain, to_sharded_stages
from repro.experiments.pareto import baseline_assignments, enumerate_landscape
from repro.experiments.reporting import format_table
from repro.hardware import bisection_tree, heterogeneous_array
from repro.models import build_model

from conftest import save_artifact


@pytest.mark.benchmark(group="landscape")
def test_alexnet_design_space_landscape(benchmark, results_dir):
    tree = bisection_tree(heterogeneous_array(), levels=1)
    model = PairCostModel(tree.left.group, tree.right.group)
    stages = flatten_to_chain(
        to_sharded_stages(build_model("alexnet").stages(512))
    )

    landscape = benchmark.pedantic(
        lambda: enumerate_landscape(stages, model), rounds=1, iterations=1,
        warmup_rounds=0,
    )

    assert len(landscape.costs) == 3 ** 8
    assert landscape.dp_cost == pytest.approx(landscape.optimum, rel=1e-9)

    baselines = baseline_assignments(stages)
    rows = []
    for name, assignment in baselines.items():
        cost = landscape.cost_of(assignment)
        rows.append(
            [
                name,
                f"{cost / landscape.optimum:.2f}x",
                f"{landscape.percentile_of(cost) * 100:.2f}%",
            ]
        )
    rows.append(["accpar (DP search)", "1.00x", "100.0%"])
    rows.append(["worst possible", f"{landscape.spread:.2f}x", "0.0%"])

    text = format_table(
        ["plan", "cost vs optimum", "beats % of space"],
        rows,
        title=(
            "AlexNet root-split design space: 6561 plans enumerated "
            "(heterogeneous array)"
        ),
    )
    save_artifact(results_dir, "landscape_alexnet.txt", text)

    # the static baselines must be strictly inside the space, not optimal
    for name, assignment in baselines.items():
        assert landscape.cost_of(assignment) > landscape.optimum