"""Ablation A1: flexible (Eq. 10) vs equal partitioning ratios.

Isolates the heterogeneity-awareness of AccPar: the same complete-space DP
with ratios pinned to 1/2.  On the heterogeneous array the flexible ratio
should recover most of AccPar's edge; on the homogeneous array the two must
coincide (the balanced ratio solves to 1/2).
"""

import pytest

from repro.core.planner import AccParScheme, Planner
from repro.experiments.reporting import format_table
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate

from conftest import save_artifact

MODELS = ["alexnet", "vgg19", "resnet18"]


def run(array, scheme, model, batch=512):
    planned = Planner(array, scheme).plan(build_model(model), batch)
    return evaluate(planned).total_time


@pytest.mark.benchmark(group="ablations")
def test_ablation_flexible_vs_equal_ratio(benchmark, results_dir):
    """Three ratio policies: equal (1/2), a single global compute-
    proportional α, and the per-layer Eq. 10 balance."""
    hetero = heterogeneous_array()
    flexible = AccParScheme()
    proportional = AccParScheme(ratio_mode="proportional", name="accpar-prop")
    equal = AccParScheme(ratio_mode="equal", name="accpar-eq")

    def sweep_ablation():
        return {
            model: (
                run(hetero, flexible, model),
                run(hetero, proportional, model),
                run(hetero, equal, model),
            )
            for model in MODELS
        }

    times = benchmark.pedantic(sweep_ablation, rounds=1, iterations=1,
                               warmup_rounds=0)

    rows = []
    for model, (t_flex, t_prop, t_eq) in times.items():
        gain = t_eq / t_flex
        rows.append([model, f"{t_eq * 1e3:.2f} ms", f"{t_prop * 1e3:.2f} ms",
                     f"{t_flex * 1e3:.2f} ms", f"{gain:.2f}x"])
        assert t_flex <= t_eq * (1 + 1e-6), model
        # per-layer balance should not lose to the single global ratio
        assert t_flex <= t_prop * (1 + 0.02), model

    text = format_table(
        ["model", "equal ratio", "proportional", "Eq. 10 per layer", "gain"],
        rows,
        title="Ablation A1: ratio policies on the heterogeneous array",
    )
    save_artifact(results_dir, "ablation_ratio.txt", text)


@pytest.mark.benchmark(group="ablations")
def test_equal_and_flexible_coincide_on_homogeneous(benchmark, results_dir):
    homo = homogeneous_array(16)

    def run_pair():
        flexible = run(homo, AccParScheme(), "alexnet", batch=128)
        equal = run(homo, AccParScheme(ratio_mode="equal", name="accpar-eq"),
                    "alexnet", batch=128)
        return flexible, equal

    t_flex, t_eq = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                      warmup_rounds=0)
    assert t_flex == pytest.approx(t_eq, rel=0.02)
