"""Fleet-serving bench: batched plan throughput across 1/2/4 shards.

Stands up a real fleet topology per shard count — thread-mode shards,
asyncio frontend, wire-protocol-v2 TCP client — and measures batched
(``plan_batch``) throughput in two regimes:

* **cold**: every spec is a planner run on its owning shard (the batch
  fans out across the consistent-hash ring);
* **warm**: the identical batch again, now served from the sharded
  caches (median of several repeats).

Emits ``results/BENCH_fleet.json``.  Fresh warm throughput may not fall
below ``1/REGRESSION_FACTOR`` of the committed artifact for the same
shard count (the committed file is read *before* it is rewritten with
this run's numbers) — the CI gate that keeps the frontend hot path
honest.
"""

import json
import pathlib
import statistics
import time

from repro.fleet.client import FleetClient
from repro.fleet.frontend import FleetFrontend
from repro.fleet.shard import ShardSupervisor
from repro.ioutil import atomic_write_text

ARTIFACT = "BENCH_fleet.json"

SHARD_COUNTS = (1, 2, 4)
WARM_REPEATS = 5

#: one batch = every (model, batch-size) combination below; distinct
#: fingerprints, so the cold pass is pure planner work fanned across shards
MODELS = ("lenet", "alexnet")
BATCHES = (32, 64, 128, 256, 384, 512, 768, 1024)
ARRAY = "tpu-v2:2,tpu-v3:2"

#: CI gate: fresh warm throughput may be at most this factor slower than
#: the committed artifact (absorbs machine-speed differences between the
#: machine that committed the baseline and the CI runner)
REGRESSION_FACTOR = 3.0


def _batch_docs():
    return [{"model": model, "array": ARRAY, "batch": batch}
            for model in MODELS for batch in BATCHES]


def _assert_batch_ok(reply, ring):
    assert reply["ok"], reply
    assert reply["succeeded"] == len(reply["items"]), reply
    for item in reply["items"]:
        assert item["ok"], item
        assert item["shard"] == ring.owner(item["fingerprint"]), item


def _run_topology(shard_count, cache_root):
    """Cold + warm batched throughput against a live fleet."""
    docs = _batch_docs()
    supervisor = ShardSupervisor(
        shard_count, cache_dir=cache_root / f"fleet-{shard_count}")
    with supervisor:
        with FleetFrontend(supervisor.handles) as frontend:
            with FleetClient(frontend.host, frontend.port) as client:
                t0 = time.perf_counter()
                reply = client.plan_batch(docs)
                cold_s = time.perf_counter() - t0
                _assert_batch_ok(reply, frontend.ring)

                warm_times = []
                for _ in range(WARM_REPEATS):
                    t0 = time.perf_counter()
                    reply = client.plan_batch(docs)
                    warm_times.append(time.perf_counter() - t0)
                    _assert_batch_ok(reply, frontend.ring)
                    assert all(i["cache_hit"] for i in reply["items"]), \
                        "warm pass should be all cache hits"
                warm_s = statistics.median(warm_times)

                stats = client.stats()
                shards_hit = sum(
                    1 for shard in stats["shards"].values()
                    if shard["metrics"]["counters"].get("requests", 0)
                )
    return {
        "cold_items_per_s": round(len(docs) / cold_s, 1),
        "warm_items_per_s": round(len(docs) / warm_s, 1),
        "cold_batch_ms": round(cold_s * 1e3, 2),
        "warm_batch_ms": round(warm_s * 1e3, 2),
        "shards_serving": shards_hit,
    }


def test_fleet_batched_throughput_and_regression_gate(results_dir, tmp_path):
    artifact_path = pathlib.Path(results_dir) / ARTIFACT
    committed = None
    if artifact_path.exists():
        committed = json.loads(artifact_path.read_text())

    topologies = {}
    for count in SHARD_COUNTS:
        numbers = _run_topology(count, tmp_path)
        topologies[str(count)] = numbers

        # every shard must actually take traffic: consistent hashing over
        # 16 distinct fingerprints leaves no shard idle at these sizes
        assert numbers["shards_serving"] == count, numbers

        if committed is not None and str(count) in committed["topologies"]:
            baseline = committed["topologies"][str(count)]["warm_items_per_s"]
            fresh = numbers["warm_items_per_s"]
            assert fresh >= baseline / REGRESSION_FACTOR, (
                f"{count}-shard warm throughput regressed to "
                f"{fresh:.0f} items/s, below 1/{REGRESSION_FACTOR} of the "
                f"committed baseline ({baseline:.0f} items/s)"
            )

    payload = {
        "description": (
            "Batched plan-serving throughput against a live thread-mode "
            f"fleet (frontend + N shards, wire protocol v2).  One batch = "
            f"{len(_batch_docs())} distinct (model, batch-size) specs on "
            f"{ARRAY}.  cold = first pass (planner runs, fanned across the "
            f"ring); warm = median of {WARM_REPEATS} repeat passes served "
            "from the sharded caches."
        ),
        "batch_items": len(_batch_docs()),
        "warm_repeats": WARM_REPEATS,
        "regression_factor": REGRESSION_FACTOR,
        "topologies": topologies,
    }
    text = json.dumps(payload, indent=2)
    # atomic: a crashed run must not leave a truncated regression baseline
    atomic_write_text(artifact_path, text + "\n")
    print(f"\n[artifact: {artifact_path}]\n{text}")
