"""Figure 7: AccPar's selected partition types per AlexNet layer.

Paper setup: 7 hierarchy levels, batch 128.  Expected shape: fc1-fc3 use
Type-II/III (model partitioning); cv1-cv5 are mostly but not solely Type-I;
deeper levels shift more layers toward Type-II/III.
"""

import pytest

from repro.core.types import PartitionType
from repro.experiments.figures import figure7_alexnet_types

from conftest import save_artifact

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@pytest.mark.benchmark(group="figures")
def test_fig7_alexnet_partition_types(benchmark, results_dir):
    result = benchmark.pedantic(
        figure7_alexnet_types, rounds=1, iterations=1, warmup_rounds=0
    )
    save_artifact(results_dir, "fig7_alexnet_types.txt", result.rendered())

    assert len(result.per_level) == 7

    # FC layers use model partitioning at every level
    for level in result.per_level:
        assert level["fc1"] in (II, III)
        assert level["fc2"] in (II, III)

    # CONV layers are mostly Type-I at the top level
    top = result.per_level[0]
    conv_types = [top[f"cv{i}"] for i in range(1, 6)]
    assert conv_types.count(I) >= 3

    # deeper hierarchy levels use at least as many model-partitioned layers
    def model_partitioned(level):
        return sum(1 for t in level.values() if t in (II, III))

    assert model_partitioned(result.per_level[-1]) >= model_partitioned(
        result.per_level[0]
    )
