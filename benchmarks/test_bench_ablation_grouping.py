"""Ablation A3: heterogeneity-aware grouping vs interleaved grouping.

The paper splits the 128+128 array so that TPU-v2 and TPU-v3 part ways at
the first hierarchy level (each subgroup is then homogeneous).  This bench
compares that against a heterogeneity-unaware placement where every
subgroup keeps an even v2/v3 mix — quantifying how much of AccPar's win
depends on grouping, not just per-layer ratios.
"""

import pytest

from repro.core.planner import AccParScheme, Planner
from repro.experiments.reporting import format_table
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate

from conftest import save_artifact

MODELS = ["alexnet", "vgg19", "resnet18"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_grouping_policy(benchmark, results_dir):
    array = heterogeneous_array()

    def run_both():
        out = {}
        for model in MODELS:
            separated = Planner(array, AccParScheme(),
                                split_policy="type-separated").plan(
                build_model(model), 512
            )
            interleaved = Planner(array, AccParScheme(),
                                  split_policy="interleaved").plan(
                build_model(model), 512
            )
            out[model] = (
                evaluate(separated).total_time,
                evaluate(interleaved).total_time,
            )
        return out

    times = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    for model, (t_sep, t_mix) in times.items():
        rows.append(
            [model, f"{t_sep * 1e3:.2f} ms", f"{t_mix * 1e3:.2f} ms",
             f"{t_mix / t_sep:.2f}x"]
        )
    text = format_table(
        ["model", "type-separated", "interleaved", "separation gain"],
        rows,
        title="Ablation A3: grouping policy on the heterogeneous array (AccPar)",
    )
    save_artifact(results_dir, "ablation_grouping.txt", text)

    # the type-separated grouping should not lose to the naive mix
    for model, (t_sep, t_mix) in times.items():
        assert t_sep <= t_mix * 1.05, model
