"""Energy bench: training efficiency (samples/joule) per scheme.

Extension experiment: iteration *time* is a critical-path quantity; energy
is array-wide and additive, and network bytes cost ~10x HBM bytes per the
technology model — so communication-avoiding partition plans save energy
even where links are fast enough to hide the time.
"""

import pytest

from repro.baselines import SCHEME_ORDER
from repro.experiments.harness import run_scheme
from repro.experiments.reporting import format_table
from repro.hardware import heterogeneous_array

from conftest import save_artifact

MODELS = ["alexnet", "vgg19", "resnet50"]


@pytest.mark.benchmark(group="energy")
def test_energy_per_scheme(benchmark, results_dir):
    array = heterogeneous_array()

    def run_all():
        return {
            (model, scheme): run_scheme(model, scheme, array).report
            for model in MODELS
            for scheme in SCHEME_ORDER
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1,
                                 warmup_rounds=0)

    rows = []
    for model in MODELS:
        for scheme in SCHEME_ORDER:
            r = reports[(model, scheme)]
            e = r.energy
            rows.append(
                [
                    model,
                    scheme,
                    f"{e.total_j:.2f} J",
                    f"{e.network_j:.2f} J",
                    f"{r.samples_per_joule:.1f}",
                ]
            )
    text = format_table(
        ["model", "scheme", "energy/iter", "network share", "samples/J"],
        rows,
        title="Energy per training iteration (heterogeneous array, batch 512)",
    )
    save_artifact(results_dir, "energy_per_scheme.txt", text)

    for model in MODELS:
        # compute energy is invariant; network energy must shrink DP -> AccPar
        dp = reports[(model, "dp")]
        accpar = reports[(model, "accpar")]
        assert accpar.energy.compute_j == pytest.approx(
            dp.energy.compute_j, rel=0.02
        )
        assert accpar.energy.network_j < dp.energy.network_j
        assert accpar.samples_per_joule > dp.samples_per_joule
