"""Figure 5: speedups on the heterogeneous 128x TPU-v2 + 128x TPU-v3 array.

Paper reference numbers (geomean over the nine DNNs, normalized to DP):
OWT 2.98x, HyPar 3.78x, AccPar 6.30x; Vgg AccPar up to 16.14x; ResNet AccPar
1.92-2.20x.
"""

import pytest

from repro.experiments.figures import figure5_heterogeneous
from repro.experiments.reporting import format_grouped_bars, format_speedup_table
from repro.models import PAPER_MODELS, RESNET_MODELS, VGG_MODELS

from repro.ioutil import atomic_write_text

from conftest import save_artifact


@pytest.mark.benchmark(group="figures")
def test_fig5_heterogeneous_array(benchmark, results_dir):
    table = benchmark.pedantic(
        figure5_heterogeneous, rounds=1, iterations=1, warmup_rounds=0
    )

    text = format_speedup_table(
        table, "Figure 5: heterogeneous array (128x TPU-v2 + 128x TPU-v3)"
    )
    text += "\n\n" + format_grouped_bars(table)
    save_artifact(results_dir, "fig5_heterogeneous.txt", text)

    from repro.experiments.svg import grouped_bar_svg

    atomic_write_text(
        results_dir / "fig5_heterogeneous.svg",
        grouped_bar_svg(table, "Figure 5: speedup over DP (heterogeneous array)"),
    )

    # shape assertions from Section 6.2
    assert table.geomean("accpar") > table.geomean("hypar") > table.geomean("dp")
    assert table.geomean("owt") > table.geomean("dp")
    for model in PAPER_MODELS:
        best = max(table.speedup(model, s) for s in table.schemes)
        assert table.speedup(model, "accpar") == pytest.approx(best)
    # Vgg series speedups dominate ResNet series speedups
    worst_vgg = min(table.speedup(m, "accpar") for m in VGG_MODELS)
    best_resnet = max(table.speedup(m, "accpar") for m in RESNET_MODELS)
    assert worst_vgg > best_resnet
