"""Failure-injection bench: straggler recovery by re-planning.

Extension experiment: throttle one board of a homogeneous array to 25%
compute and measure what each scheme recovers by re-planning on the
unchanged topology.  AccPar's heterogeneity-aware ratios are the only
mechanism that can respond; the equal-ratio schemes re-derive the same
plan and eat the slowdown.
"""

import pytest

from repro.experiments.faults import straggler_experiment
from repro.experiments.reporting import format_table
from repro.hardware import homogeneous_array

from conftest import save_artifact

SCHEMES = ["dp", "owt", "hypar", "accpar"]


@pytest.mark.benchmark(group="faults")
def test_straggler_recovery(benchmark, results_dir):
    array = homogeneous_array(16)

    def run_all():
        return {
            scheme: straggler_experiment(
                "vgg19", array, scheme=scheme, n_degraded=1,
                compute_factor=0.25, batch=512,
            )
            for scheme in SCHEMES
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1,
                                  warmup_rounds=0)

    rows = []
    for scheme, o in outcomes.items():
        rows.append(
            [
                scheme,
                f"{o.healthy_time * 1e3:.2f} ms",
                f"{o.stale_plan_time * 1e3:.2f} ms",
                f"{o.replanned_time * 1e3:.2f} ms",
                f"{o.recovery_gain:.3f}x",
            ]
        )
    text = format_table(
        ["scheme", "healthy", "stale plan", "re-planned", "recovery"],
        rows,
        title="Straggler injection: one board at 25% compute (vgg19, 16x TPU-v3)",
    )
    save_artifact(results_dir, "straggler_recovery.txt", text)

    # equal-ratio schemes cannot adapt; AccPar must recover the most
    assert outcomes["dp"].recovery_gain == pytest.approx(1.0, abs=1e-6)
    assert outcomes["hypar"].recovery_gain == pytest.approx(1.0, abs=1e-6)
    best = max(o.recovery_gain for o in outcomes.values())
    assert outcomes["accpar"].recovery_gain == pytest.approx(best)
