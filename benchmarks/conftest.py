"""Shared benchmark fixtures: artifact directory for reproduced figures."""

import pathlib

import pytest

from repro.ioutil import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it for the bench log.

    Written atomically (temp file + ``os.replace``): an interrupted bench
    run can never leave a truncated artifact behind for a later run — or
    the CI regression gate — to trip over.
    """
    path = results_dir / name
    atomic_write_text(path, text + "\n")
    print(f"\n[artifact: {path}]\n{text}")
