"""Shared benchmark fixtures: artifact directory for reproduced figures."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it for the bench log."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n[artifact: {path}]\n{text}")
