"""Deployment-fidelity benches: ratio quantization and data-format width.

Two practical questions a deployment must answer on top of the paper:

* do the real-valued Eq. 10 ratios survive rounding to integer tensor
  splits?  (they must — fractional batches do not exist);
* how much of the speedup depends on bfloat16 (Section 6.1's format)
  versus fp32?
"""

import pytest

from repro.core.planner import AccParPlanner, Planner
from repro.baselines import get_scheme
from repro.core.quantize import quantize_plan
from repro.experiments.reporting import format_table
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.sim.engine import EngineConfig
from repro.sim.executor import evaluate

from conftest import save_artifact

MODELS = ["alexnet", "vgg19", "resnet18"]


@pytest.mark.benchmark(group="deployment")
def test_ratio_quantization_drift(benchmark, results_dir):
    array = heterogeneous_array()

    def quantize_all():
        out = {}
        for model in MODELS:
            planned = AccParPlanner(array).plan(build_model(model), 512)
            quantized, report = quantize_plan(planned)
            out[model] = (
                evaluate(planned).total_time,
                evaluate(quantized).total_time,
                report.max_ratio_shift,
            )
        return out

    results = benchmark.pedantic(quantize_all, rounds=1, iterations=1,
                                 warmup_rounds=0)

    rows = []
    for model, (t_real, t_quant, shift) in results.items():
        drift = (t_quant - t_real) / t_real * 100
        rows.append([model, f"{t_real * 1e3:.3f} ms", f"{t_quant * 1e3:.3f} ms",
                     f"{drift:+.2f}%", f"{shift:.4f}"])
        assert abs(drift) < 5.0, model  # rounding must not change the story

    text = format_table(
        ["model", "real ratios", "integer splits", "time drift", "max α shift"],
        rows,
        title="Ratio quantization: Eq. 10 ratios -> integer tensor splits",
    )
    save_artifact(results_dir, "deployment_quantization.txt", text)


@pytest.mark.benchmark(group="deployment")
def test_dtype_width_ablation(benchmark, results_dir):
    """bfloat16 (paper) vs fp32: communication bytes double, so DP suffers
    twice as much and AccPar's relative advantage grows."""
    array = heterogeneous_array()

    def run_both_widths():
        out = {}
        for dtype_bytes in (2, 4):
            accpar = Planner(array, get_scheme("accpar"),
                             dtype_bytes=dtype_bytes).plan(
                build_model("vgg19"), 512
            )
            dp = Planner(array, get_scheme("dp"), dtype_bytes=dtype_bytes).plan(
                build_model("vgg19"), 512
            )
            config = EngineConfig(dtype_bytes=dtype_bytes)
            out[dtype_bytes] = (
                evaluate(dp, config).total_time,
                evaluate(accpar, config).total_time,
            )
        return out

    results = benchmark.pedantic(run_both_widths, rounds=1, iterations=1,
                                 warmup_rounds=0)

    rows = []
    for dtype_bytes, (t_dp, t_acc) in sorted(results.items()):
        label = "bfloat16" if dtype_bytes == 2 else "float32"
        rows.append([label, f"{t_dp * 1e3:.2f} ms", f"{t_acc * 1e3:.2f} ms",
                     f"{t_dp / t_acc:.2f}x"])
    text = format_table(
        ["format", "DP", "AccPar", "speedup"],
        rows,
        title="Data-format ablation (vgg19, heterogeneous array)",
    )
    save_artifact(results_dir, "deployment_dtype.txt", text)

    # wider data slows everything; both formats keep AccPar ahead
    assert results[4][0] > results[2][0]
    assert results[4][1] > results[2][1]