"""Table 8: the flexibility ordering DP ≺ OWT ≺ HyPar ≺ AccPar.

The paper presents this as a qualitative comparison; we quantify it as the
geomean speedup over a mixed model set on the heterogeneous array and assert
the monotone ordering (static → dynamic, incomplete → complete).
"""

import pytest

from repro.experiments.figures import figure5_heterogeneous
from repro.experiments.reporting import format_table

from conftest import save_artifact

MODELS = ["alexnet", "vgg11", "vgg19", "resnet18", "resnet50"]


@pytest.mark.benchmark(group="tables")
def test_table8_flexibility_ordering(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: figure5_heterogeneous(models=MODELS),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    geo = {s: table.geomean(s) for s in table.schemes}
    assert geo["dp"] <= geo["owt"] <= geo["hypar"] <= geo["accpar"]

    rows = [
        ["DP", "static", "data only", "equal", f"{geo['dp']:.2f}x"],
        ["OWT", "static", "data+model", "equal", f"{geo['owt']:.2f}x"],
        ["HyPar", "dynamic", "data+model", "equal", f"{geo['hypar']:.2f}x"],
        ["AccPar", "dynamic", "complete (I/II/III)", "flexible",
         f"{geo['accpar']:.2f}x"],
    ]
    text = format_table(
        ["scheme", "configuration", "partition space", "ratio", "geomean speedup"],
        rows,
        title="Table 8: flexibility comparison (low -> high)",
    )
    save_artifact(results_dir, "table8_flexibility.txt", text)
