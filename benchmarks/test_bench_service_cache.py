"""Benchmark: plan-service cache speedup and single-flight coalescing.

Two serving-layer claims are measured (and enforced):

* a warm (cached) request is at least 10x faster than the cold planning run
  it memoizes — the whole point of fronting the O(N·|T|²) DP with a cache;
* N concurrent identical requests trigger exactly one planner invocation,
  i.e. a coalescing factor of N.
"""

import threading
import time

from repro.hardware.presets import heterogeneous_array
from repro.service import PlanRequest, PlanService

from conftest import save_artifact

MODEL = "vgg19"
BATCH = 512
THREADS = 8


def test_bench_cold_vs_warm_and_coalescing(results_dir):
    array = heterogeneous_array(8, 8)
    request = PlanRequest(model=MODEL, array=array, batch=BATCH)

    with PlanService(workers=THREADS) as service:
        t0 = time.perf_counter()
        cold = service.plan(request)
        cold_s = time.perf_counter() - t0
        assert cold.source == "planned"

        warm_samples = []
        for _ in range(20):
            t0 = time.perf_counter()
            warm = service.plan(request)
            warm_samples.append(time.perf_counter() - t0)
            assert warm.source == "memory"
        warm_s = min(warm_samples)

    # concurrent duplicate requests on a fresh service: one planner run
    with PlanService(workers=THREADS) as service:
        barrier = threading.Barrier(THREADS)
        responses = [None] * THREADS

        def worker(i):
            barrier.wait()
            responses[i] = service.plan(request)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        herd_s = time.perf_counter() - t0

        planner_runs = service.metrics.value("planner_runs")
        coalesced = service.metrics.value("coalesced")

    speedup = cold_s / warm_s
    factor = THREADS / planner_runs
    lines = [
        f"plan service cache benchmark ({MODEL}, batch {BATCH}, "
        f"{array.size} accelerators)",
        f"  cold plan latency        {cold_s * 1e3:9.2f} ms",
        f"  warm (cache) latency     {warm_s * 1e3:9.2f} ms  (best of 20)",
        f"  warm speedup             {speedup:9.1f}x",
        f"  {THREADS} concurrent duplicates  {herd_s * 1e3:9.2f} ms wall",
        f"  planner invocations      {planner_runs:9d}",
        f"  coalesced requests       {coalesced:9d}",
        f"  coalescing factor        {factor:9.1f}x",
    ]
    save_artifact(results_dir, "bench_service_cache.txt", "\n".join(lines))

    assert planner_runs == 1, "duplicate requests must plan exactly once"
    assert coalesced == THREADS - 1
    assert speedup >= 10.0, (
        f"warm requests must be >=10x faster than cold (got {speedup:.1f}x: "
        f"cold {cold_s * 1e3:.2f}ms, warm {warm_s * 1e3:.2f}ms)"
    )
