"""Table 7: the TPU-v2 / TPU-v3 accelerator specifications.

A configuration table rather than an experiment; the bench verifies the
presets drive the simulator consistently (a v3 board must beat a v2 board on
the same leaf workload).
"""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.experiments.reporting import format_table
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.models import build_model
from repro.sim.executor import evaluate

from conftest import save_artifact


@pytest.mark.benchmark(group="tables")
def test_table7_accelerator_specs(benchmark, results_dir):
    def single_board_times():
        out = {}
        for spec in (TPU_V2, TPU_V3):
            planner = Planner(make_group(spec, 1), get_scheme("dp"))
            planned = planner.plan(build_model("alexnet"), batch=64)
            out[spec.name] = evaluate(planned).total_time
        return out

    times = benchmark(single_board_times)
    assert times["tpu-v3"] < times["tpu-v2"]

    rows = []
    for spec in (TPU_V2, TPU_V3):
        rows.append(
            [
                spec.name,
                f"{spec.flops / 1e12:.0f} T",
                f"{spec.memory_bytes / 2**30:.0f} GB",
                f"{spec.memory_bandwidth / 1e9:.0f} GB/s",
                f"{spec.network_bandwidth * 8 / 1e9:.0f} Gb/s",
                f"{times[spec.name] * 1e3:.3f} ms",
            ]
        )
    text = format_table(
        ["accelerator", "FLOPS", "HBM", "mem BW", "net rate", "alexnet b64 iter"],
        rows,
        title="Table 7: accelerator specifications (plus single-board sim check)",
    )
    save_artifact(results_dir, "table7_specs.txt", text)
