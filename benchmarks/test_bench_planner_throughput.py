"""Planner-throughput bench: the hot-path overhaul vs the seed planner.

Times end-to-end hierarchical planning (tree build + every level search) on
the paper's heterogeneous 128+128 TPU-v2/v3 array and emits
``results/BENCH_planner.json``.  Three guarantees are enforced here rather
than just reported:

* the optimized planner (closed-form Eq. 10 + family memoization) emits the
  *same plan* as the legacy mode (bisection, uncached) — types identical,
  ratios within 1e-9;
* the optimized planner clears the overhaul's speedup floor against the
  recorded seed-planner timings;
* fresh timings may not regress more than ``REGRESSION_FACTOR``× against the
  committed ``BENCH_planner.json`` (the CI gate; the committed file is read
  *before* it is rewritten with this run's numbers);
* the ``dp-vectorized`` backend emits a bit-identical plan to ``dp`` and
  clears ``VECTORIZED_SPEEDUP_FLOOR``× over it on resnet18 (the deepest
  network here, where the batched recurrence has the most to amortize).
"""

import json
import pathlib
import statistics
import time

from repro.core.hierarchy import collect_level_plans
from repro.core.planner import AccParScheme, Planner
from repro.hardware.presets import heterogeneous_array
from repro.ioutil import atomic_write_text
from repro.models import build_model
from repro.obs import telemetry as telemetry_store

from conftest import RESULTS_DIR

ARTIFACT = "BENCH_planner.json"

NETWORKS = ("alexnet", "vgg16", "resnet18")
BATCH = 512
REPEATS = 7

#: end-to-end planning time of the pre-overhaul planner (bisection ratio
#: solver, no step memoization, no workload/tree caching) on this benchmark's
#: exact configuration, recorded at the seed commit.  These are the "before"
#: numbers the overhaul is measured against; the in-process legacy mode
#: (``closed_form=False, memoize=False``) is faster than this because the
#: structural work (eager workload quantities, pairing-tree cache, linear
#: backtracking) speeds both modes up.
SEED_BASELINE_MS = {
    "alexnet": 44.8,
    "vgg16": 92.9,
    "resnet18": 224.5,
}

#: acceptance floor for the overhaul: optimized wall-clock vs seed baseline
SPEEDUP_FLOOR = 5.0

#: in-process legacy-mode timings recorded on the *same machine* as
#: ``SEED_BASELINE_MS``.  The legacy mode re-runs on every machine, so the
#: ratio ``legacy_now / LEGACY_REFERENCE_MS`` measures how much slower (or
#: faster) the current machine is than the one that recorded the seed
#: numbers — and scaling the seed baseline by it makes the speedup floor
#: machine-independent instead of silently assuming baseline-commit hardware.
LEGACY_REFERENCE_MS = {
    "alexnet": 17.47,
    "vgg16": 36.80,
    "resnet18": 101.48,
}

#: CI gate: fresh optimized timings may be at most this factor slower than
#: the committed artifact (absorbs machine-speed differences between the
#: machine that committed the baseline and the CI runner)
REGRESSION_FACTOR = 3.0

#: CI gate: the vectorized backend must beat the scalar DP by at least this
#: factor on resnet18.  Both backends run in the same process on the same
#: machine, so no calibration is needed; resnet18 only, because on shallow
#: chains (alexnet) fixed per-plan overhead dominates both and the ratio
#: mostly measures noise.
VECTORIZED_SPEEDUP_FLOOR = 3.0
VECTORIZED_GATE_NETWORK = "resnet18"

#: CI gate: planning with durable telemetry *enabled* (a live writer
#: recording one search event per plan) may cost at most this fraction
#: over planning with telemetry off.  Measured on the fastest network —
#: the per-plan recording cost is fixed, so the shallowest plan is where
#: it is proportionally largest.
TELEMETRY_OVERHEAD_CEILING = 0.05
TELEMETRY_GATE_NETWORK = "alexnet"
TELEMETRY_REPEATS = 15


def _plan(net, scheme):
    """One cold end-to-end plan: fresh array, fresh planner, fresh scheme."""
    array = heterogeneous_array()
    return Planner(array, scheme).plan(net, BATCH)


def _interleaved_ms(net, scheme_factories):
    """Time several schemes interleaved; returns (median_ms, min_ms) per scheme.

    Each repeat runs every scheme once, back to back, so a machine-noise
    burst (shared CI runner, single-core box) lands on all schemes instead
    of biasing whichever one happened to own that block of wall-clock.
    The speedup gates compare the *minima*: scheduler noise is strictly
    additive, so min-of-N estimates true cost stably where a ratio of
    block medians flaps; the medians are reported in the artifact.
    """
    times = [[] for _ in scheme_factories]
    for _ in range(REPEATS):
        for slot, factory in enumerate(scheme_factories):
            scheme = factory()
            t0 = time.perf_counter()
            _plan(net, scheme)
            times[slot].append(time.perf_counter() - t0)
    return [(statistics.median(ts) * 1e3, min(ts) * 1e3) for ts in times]


def _assert_same_plan(name, optimized, legacy):
    """The overhaul must not change a single decision: types identical,
    ratios within 1e-9, per-level costs within float noise."""
    opt_levels = collect_level_plans(optimized.plan)
    leg_levels = collect_level_plans(legacy.plan)
    assert len(opt_levels) == len(leg_levels), name
    for opt, leg in zip(opt_levels, leg_levels):
        assert set(opt.assignments) == set(leg.assignments), name
        for key in opt.assignments:
            o, l = opt.assignments[key], leg.assignments[key]
            assert o.ptype == l.ptype, (name, key, o.ptype, l.ptype)
            assert abs(o.ratio - l.ratio) <= 1e-9, (name, key, o.ratio, l.ratio)
        if opt.cost and leg.cost:
            rel = abs(opt.cost - leg.cost) / max(abs(leg.cost), 1e-30)
            assert rel <= 1e-9, (name, opt.cost, leg.cost)


def _assert_identical_plan(name, a, b):
    """Bit-identical plans: same ordered typed entries, same float costs.

    Stricter than :func:`_assert_same_plan` — the vectorized backend is a
    different execution strategy for the *same* arithmetic, so it owes
    equality, not tolerance."""
    a_levels = collect_level_plans(a.plan)
    b_levels = collect_level_plans(b.plan)
    assert len(a_levels) == len(b_levels), name
    for la, lb in zip(a_levels, b_levels):
        assert la.entries == lb.entries, name
        assert la.cost == lb.cost, name


def test_planner_throughput_and_regression_gate(results_dir):
    artifact_path = pathlib.Path(results_dir) / ARTIFACT
    committed = None
    if artifact_path.exists():
        committed = json.loads(artifact_path.read_text())

    networks = {}
    for name in NETWORKS:
        net = build_model(name)

        # identity first (also warms imports and caches for the timings)
        optimized = _plan(net, AccParScheme())
        legacy = _plan(net, AccParScheme(closed_form=False, memoize=False))
        vectorized = _plan(net, AccParScheme(backend="dp-vectorized"))
        _assert_same_plan(name, optimized, legacy)
        _assert_identical_plan(name, optimized, vectorized)

        (
            (optimized_ms, optimized_min),
            (legacy_ms, legacy_min),
            (dp_vectorized_ms, dp_vectorized_min),
        ) = _interleaved_ms(net, (
            AccParScheme,
            lambda: AccParScheme(closed_form=False, memoize=False),
            lambda: AccParScheme(backend="dp-vectorized"),
        ))
        # calibrate the seed baseline to this machine: the legacy mode runs
        # the seed's solver configuration in-process, so its slowdown vs the
        # reference recording is pure machine speed.  The gate uses the
        # minima end to end, so the factor does too.
        machine_factor = legacy_min / LEGACY_REFERENCE_MS[name]
        seed_ms = SEED_BASELINE_MS[name] * machine_factor
        networks[name] = {
            "seed_baseline_ms": SEED_BASELINE_MS[name],
            "machine_factor": round(machine_factor, 3),
            "optimized_ms": round(optimized_ms, 2),
            "legacy_mode_ms": round(legacy_ms, 2),
            "dp_vectorized_ms": round(dp_vectorized_ms, 2),
            "speedup_vs_seed": round(seed_ms / optimized_min, 2),
            "speedup_vs_legacy_mode": round(legacy_min / optimized_min, 2),
            "speedup_dp_vectorized_vs_dp": round(
                optimized_min / dp_vectorized_min, 2
            ),
        }

        if name == VECTORIZED_GATE_NETWORK:
            assert optimized_min / dp_vectorized_min >= VECTORIZED_SPEEDUP_FLOOR, (
                f"{name}: dp-vectorized at {dp_vectorized_min:.1f}ms is only "
                f"{optimized_min / dp_vectorized_min:.1f}x over the scalar dp "
                f"backend ({optimized_min:.1f}ms); the vectorized recurrence "
                f"requires >= {VECTORIZED_SPEEDUP_FLOOR}x here"
            )

        assert seed_ms / optimized_min >= SPEEDUP_FLOOR, (
            f"{name}: optimized planner at {optimized_min:.1f}ms is only "
            f"{seed_ms / optimized_min:.1f}x over the machine-calibrated seed "
            f"baseline ({seed_ms:.1f}ms = {SEED_BASELINE_MS[name]:.1f}ms x "
            f"{machine_factor:.2f}); the overhaul requires >= {SPEEDUP_FLOOR}x"
        )

        if committed is not None:
            baseline = committed["networks"][name]["optimized_ms"]
            assert optimized_ms <= REGRESSION_FACTOR * baseline, (
                f"{name}: optimized planner regressed to {optimized_ms:.1f}ms, "
                f"more than {REGRESSION_FACTOR}x the committed baseline "
                f"({baseline:.1f}ms)"
            )

    payload = {
        "description": (
            "End-to-end hierarchical planning time (median of "
            f"{REPEATS} interleaved cold runs; speedup ratios compare the "
            "per-scheme minima, which are stable under shared-runner noise), "
            "heterogeneous 128+128 TPU-v2/v3 array, "
            f"batch {BATCH}.  seed_baseline_ms is the pre-overhaul planner "
            "recorded at the seed commit; legacy_mode_ms is the same solver "
            "configuration (bisection, uncached) running in-process today; "
            "machine_factor (legacy_mode_ms / the legacy timing recorded "
            "alongside the seed numbers) rescales the seed baseline to this "
            "machine before the speedup floor is checked.  dp_vectorized_ms "
            "is the dp-vectorized backend (batched numpy Eq. 9) on the same "
            "workload; it must emit a bit-identical plan and beat dp by "
            f"{VECTORIZED_SPEEDUP_FLOOR}x on {VECTORIZED_GATE_NETWORK}."
        ),
        "vectorized_speedup_floor": VECTORIZED_SPEEDUP_FLOOR,
        "vectorized_gate_network": VECTORIZED_GATE_NETWORK,
        "batch": BATCH,
        "repeats": REPEATS,
        "regression_factor": REGRESSION_FACTOR,
        "networks": networks,
    }
    text = json.dumps(payload, indent=2)
    # atomic: a crashed run must not leave a truncated regression baseline
    atomic_write_text(artifact_path, text + "\n")
    print(f"\n[artifact: {artifact_path}]\n{text}")


def test_telemetry_overhead_gate(results_dir, tmp_path):
    """Durable telemetry must stay out of the planner's way.

    Two interleaved timing series on the same workload: telemetry off
    (no process-wide writer — the disabled-path contract, one attribute
    read per plan) and telemetry on (a live writer appending one search
    event per plan).  The enabled overhead, measured on the per-mode
    *medians*, must stay under ``TELEMETRY_OVERHEAD_CEILING``.  Medians
    rather than the minima the speedup gates use: the true recording
    cost is microseconds against a multi-millisecond plan, so at this
    resolution the minimum of either series is itself a noise draw,
    while the interleaved medians cancel machine noise that lands on
    both modes alike.
    """
    net = build_model(TELEMETRY_GATE_NETWORK)
    _plan(net, AccParScheme())  # warm imports/caches outside the timings

    telemetry_store.uninstall()
    writer = telemetry_store.TelemetryWriter(tmp_path / "telemetry")
    off_times, on_times = [], []
    try:
        for _ in range(TELEMETRY_REPEATS):
            telemetry_store.uninstall()
            t0 = time.perf_counter()
            _plan(net, AccParScheme())
            off_times.append(time.perf_counter() - t0)

            telemetry_store.install(writer)
            # uninstall() above closed the writer's segment; reopen it
            # outside the timed region — a production writer stays open,
            # so the on-path timing should not pay a per-plan open()
            writer.record({"type": "bench_warm"})
            t0 = time.perf_counter()
            _plan(net, AccParScheme())
            on_times.append(time.perf_counter() - t0)
    finally:
        telemetry_store.uninstall()

    # one warm event + one search event per enabled plan
    assert writer.events_written == 2 * TELEMETRY_REPEATS
    off_ms = statistics.median(off_times) * 1e3
    on_ms = statistics.median(on_times) * 1e3
    overhead = on_ms / off_ms - 1.0
    assert overhead <= TELEMETRY_OVERHEAD_CEILING, (
        f"telemetry-enabled planning at {on_ms:.2f}ms is "
        f"{overhead * 100:.1f}% over the disabled path "
        f"({off_ms:.2f}ms); the ceiling is "
        f"{TELEMETRY_OVERHEAD_CEILING * 100:.0f}%"
    )

    # fold the measurement into the committed artifact (the main gate has
    # already rewritten it this run when the full file is executed)
    artifact_path = pathlib.Path(results_dir) / ARTIFACT
    payload = json.loads(artifact_path.read_text()) \
        if artifact_path.exists() else {}
    payload["telemetry_overhead"] = {
        "network": TELEMETRY_GATE_NETWORK,
        "repeats": TELEMETRY_REPEATS,
        "ceiling": TELEMETRY_OVERHEAD_CEILING,
        "disabled_ms": round(off_ms, 3),
        "enabled_ms": round(on_ms, 3),
        "overhead_pct": round(overhead * 100, 2),
    }
    text = json.dumps(payload, indent=2)
    atomic_write_text(artifact_path, text + "\n")
    print(f"\n[artifact: {artifact_path} telemetry_overhead]\n"
          f"{json.dumps(payload['telemetry_overhead'], indent=2)}")
