"""Calibration-loop bench: fit a profile from simulated telemetry, replan.

Runs the full measure -> fit -> replan loop of
:mod:`repro.experiments.calibration_gap` against a synthetic ground-truth
array and persists the per-model gap table as
``results/calibration_gap.txt``.
"""

import pytest

from repro.experiments.calibration_gap import calibration_gap

from conftest import save_artifact


@pytest.mark.benchmark(group="calibration")
def test_calibration_gap(benchmark, results_dir):
    report = benchmark.pedantic(
        calibration_gap, rounds=1, iterations=1, warmup_rounds=0,
    )

    save_artifact(results_dir, "calibration_gap.txt", report.rendered())

    # the fitted profile must cover both accelerator generations ...
    assert report.profile.spec_names() == ("tpu-v2", "tpu-v3")
    # ... and actually change planning decisions somewhere in the zoo
    assert report.total_decisions_changed >= 1
    # every row timed both plans on the ground-truth array
    for row in report.rows:
        assert row.analytic_time_s > 0 and row.calibrated_time_s > 0
