"""Table 3: rotational symmetry of the three training multiplications.

For each phase's mat-mul the table records the partitioned dimension and the
partial-sum (psum) tensor shape; each basic type "owns" exactly one phase.
This bench verifies the algebra over a sweep of layer geometries and times
the partition-algebra hot path (it runs inside every DP step).
"""

import random

import pytest

from repro.core.types import (
    ALL_TYPES,
    PARTITIONED_DIM,
    PSUM_PHASE,
    PartitionType,
    Phase,
    ShardedWorkload,
)
from repro.experiments.reporting import format_table
from repro.graph.layers import LayerWorkload

from conftest import save_artifact

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def random_workloads(n=200, seed=7):
    rng = random.Random(seed)
    out = []
    for idx in range(n):
        conv = rng.random() < 0.5
        k = rng.choice([1, 3, 5, 7]) if conv else 1
        hw = (rng.randint(1, 64), rng.randint(1, 64)) if conv else (1, 1)
        out.append(
            LayerWorkload(
                f"l{idx}",
                rng.randint(1, 512),
                rng.randint(1, 1024),
                rng.randint(1, 1024),
                hw,
                hw,
                (k, k),
                conv,
            )
        )
    return out


@pytest.mark.benchmark(group="tables")
def test_table3_rotational_symmetry(benchmark, results_dir):
    workloads = random_workloads()

    def verify_all():
        checked = 0
        for base in workloads:
            sw = ShardedWorkload(base)
            # psum shapes per type: ΔW / F_{l+1} / E_l (Table 3's Psum column)
            assert sw.a_psum(I) == sw.a_weight()
            assert sw.a_psum(II) == sw.a_output_fm()
            assert sw.a_psum(III) == sw.a_input_fm()
            # each phase is owned by exactly one type
            owned = {PSUM_PHASE[t] for t in ALL_TYPES}
            assert owned == set(Phase)
            # partitioned dims are the three distinct tensor dimensions
            assert set(PARTITIONED_DIM.values()) == {"B", "D_i", "D_o"}
            checked += 1
        return checked

    checked = benchmark(verify_all)
    assert checked == len(workloads)

    rows = [
        ["F_{l+1} = F_l x W_l", "D_i", "(B, D_o)", "Type-II"],
        ["E_l = E_{l+1} x W^T", "D_o", "(B, D_i)", "Type-III"],
        ["dW = F^T x E_{l+1}", "B", "(D_i, D_o)", "Type-I"],
    ]
    text = format_table(
        ["multiplication", "partition dim", "psum shape", "basic type"],
        rows,
        title=f"Table 3: rotational symmetry (verified on {checked} random layers)",
    )
    save_artifact(results_dir, "table3_symmetry.txt", text)
