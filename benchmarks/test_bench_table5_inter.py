"""Table 5: inter-layer communication cost for all nine type transitions.

Prints the 3x3 grid in the paper's layout and verifies each entry's closed
form: 0 on the free transitions, α·β·(A(F)+A(E)) on I→II / III→I, and
β·A(tensor) on the remaining four.
"""

import pytest

from repro.core.cost_model import inter_layer_elements
from repro.core.types import ALL_TYPES, PartitionType
from repro.experiments.reporting import format_table

from conftest import save_artifact

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

A_FM = 512 * 4096.0  # boundary tensor elements
ALPHA = 0.7
BETA = 1.0 - ALPHA

CLOSED_FORMS = {
    (I, I): 0.0,
    (II, III): 0.0,
    (III, II): 0.0,
    (I, II): ALPHA * BETA * 2 * A_FM,
    (III, I): ALPHA * BETA * 2 * A_FM,
    (I, III): BETA * A_FM,
    (III, III): BETA * A_FM,
    (II, I): BETA * A_FM,
    (II, II): BETA * A_FM,
}

LABELS = {
    (I, I): "0",
    (II, III): "0",
    (III, II): "0",
    (I, II): "ab(A(F)+A(E))/b_i",
    (III, I): "ab(A(F)+A(E))/b_i",
    (I, III): "bA(F_{l+1})/b_i",
    (III, III): "bA(F_{l+1})/b_i",
    (II, I): "bA(E_{l+1})/b_i",
    (II, II): "bA(E_{l+1})/b_i",
}


@pytest.mark.benchmark(group="tables")
def test_table5_inter_layer_costs(benchmark, results_dir):
    def compute_grid():
        return {
            (tt, t): inter_layer_elements(A_FM, tt, t, ALPHA)
            for tt in ALL_TYPES
            for t in ALL_TYPES
        }

    grid = benchmark(compute_grid)

    for key, expected in CLOSED_FORMS.items():
        amount_i, _ = grid[key]
        assert amount_i == pytest.approx(expected), key

    rows = []
    for tt in ALL_TYPES:
        row = [str(tt)]
        for t in ALL_TYPES:
            amount_i, _ = grid[(tt, t)]
            row.append(f"{amount_i / 1e6:.3f}M ({LABELS[(tt, t)]})")
        rows.append(row)
    text = format_table(
        ["layer l \\ l+1"] + [str(t) for t in ALL_TYPES],
        rows,
        title=(
            "Table 5: inter-layer elements accessed by party i "
            f"(A(F)=A(E)={A_FM / 1e6:.3f}M, a={ALPHA}, b={BETA:.1f})"
        ),
    )
    save_artifact(results_dir, "table5_inter.txt", text)
