"""Table 4: intra-layer communication cost of the three basic types.

Verifies, on a reference FC and CONV layer, that the cost is A(psum)/b_i
with the psum tensor of Table 4, and that it is independent of the
partitioning ratio α (partial sums are accumulated locally first).
"""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.experiments.reporting import format_table
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group

from conftest import save_artifact

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

FC = ShardedWorkload(LayerWorkload("fc", 512, 4096, 4096, (1, 1), (1, 1), (1, 1), False))
CONV = ShardedWorkload(LayerWorkload("cv", 512, 256, 256, (14, 14), (14, 14), (3, 3), True))


@pytest.mark.benchmark(group="tables")
def test_table4_intra_layer_costs(benchmark, results_dir):
    model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))

    def compute_all():
        return {
            (sw.name, t): model.intra_costs(sw, t)
            for sw in (FC, CONV)
            for t in ALL_TYPES
        }

    costs = benchmark(compute_all)

    expected_psum = {I: "A(W_l)", II: "A(F_{l+1})", III: "A(E_l)"}
    rows = []
    for sw in (FC, CONV):
        for t in ALL_TYPES:
            ci, cj = costs[(sw.name, t)]
            # verify the closed form against the psum tensor size
            amount = sw.a_psum(t) * 2  # bfloat16 bytes
            assert ci == pytest.approx(amount / TPU_V3.network_bandwidth)
            assert cj == pytest.approx(amount / TPU_V2.network_bandwidth)
            rows.append(
                [sw.name, str(t), expected_psum[t], f"{ci * 1e3:.3f} ms",
                 f"{cj * 1e3:.3f} ms"]
            )

    text = format_table(
        ["layer", "type", "psum tensor", "cost @ v3", "cost @ v2"],
        rows,
        title="Table 4: intra-layer communication cost (b_i of the accessing party)",
    )
    save_artifact(results_dir, "table4_intra.txt", text)

    # ratio-independence: sharding the *other* dimensions changes the psum,
    # but the cost never takes an alpha argument — assert the documented
    # closed form holds for an arbitrarily sharded tensor too
    sharded = FC.shard(I, 0.3)
    ci, _ = model.intra_costs(sharded, II)
    assert ci == pytest.approx(sharded.a_output_fm() * 2 / TPU_V3.network_bandwidth)
