"""Figure 6: speedups on the homogeneous 128x TPU-v3 array.

Paper reference numbers (geomean): OWT 2.94x, HyPar 3.51x, AccPar 3.86x —
the AccPar/HyPar gap shrinks without heterogeneity to exploit.
"""

import pytest

from repro.experiments.figures import figure5_heterogeneous, figure6_homogeneous
from repro.experiments.reporting import format_grouped_bars, format_speedup_table

from repro.ioutil import atomic_write_text

from conftest import save_artifact


@pytest.mark.benchmark(group="figures")
def test_fig6_homogeneous_array(benchmark, results_dir):
    table = benchmark.pedantic(
        figure6_homogeneous, rounds=1, iterations=1, warmup_rounds=0
    )

    text = format_speedup_table(table, "Figure 6: homogeneous array (128x TPU-v3)")
    text += "\n\n" + format_grouped_bars(table)
    save_artifact(results_dir, "fig6_homogeneous.txt", text)

    from repro.experiments.svg import grouped_bar_svg

    atomic_write_text(
        results_dir / "fig6_homogeneous.svg",
        grouped_bar_svg(table, "Figure 6: speedup over DP (homogeneous array)"),
    )

    assert table.geomean("accpar") >= table.geomean("hypar") - 1e-9
    assert table.geomean("hypar") > table.geomean("dp")


@pytest.mark.benchmark(group="figures")
def test_heterogeneity_gap(benchmark, results_dir):
    """Section 6.2 vs 6.3: AccPar's edge over HyPar is much larger on the
    heterogeneous array (paper: 6.30/3.78 = 1.67 vs 3.86/3.51 = 1.10)."""

    def both():
        models = ["alexnet", "vgg11", "vgg19", "resnet18"]
        hetero = figure5_heterogeneous(models=models)
        homo = figure6_homogeneous(models=models)
        return hetero, homo

    hetero, homo = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    gap_hetero = hetero.geomean("accpar") / hetero.geomean("hypar")
    gap_homo = homo.geomean("accpar") / homo.geomean("hypar")
    save_artifact(
        results_dir,
        "heterogeneity_gap.txt",
        "AccPar/HyPar geomean gap\n"
        f"  heterogeneous: {gap_hetero:.2f}x   (paper: 1.67x)\n"
        f"  homogeneous:   {gap_homo:.2f}x   (paper: 1.10x)",
    )
    assert gap_hetero > gap_homo
