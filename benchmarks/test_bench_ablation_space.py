"""Ablation A2: the complete {I, II, III} space vs HyPar's {I, II}.

Isolates Type-III (the partition overlooked by prior work, Section 3.2.3):
the same cost model and flexible ratios, with the search space restricted.
Dominance is exact on the planner's objective; on the independent simulator
we report the measured gain per model.
"""

import pytest

from repro.core.planner import AccParScheme, Planner
from repro.core.types import HYPAR_TYPES, PartitionType
from repro.experiments.reporting import format_table
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate

from conftest import save_artifact

MODELS = ["alexnet", "vgg19", "resnet18"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_complete_vs_two_type_space(benchmark, results_dir):
    array = heterogeneous_array()
    full_scheme = AccParScheme()
    two_scheme = AccParScheme(space=HYPAR_TYPES, name="accpar-2type")

    def sweep_ablation():
        out = {}
        for model in MODELS:
            net = build_model(model)
            planned_full = Planner(array, full_scheme).plan(net, 512)
            planned_two = Planner(array, two_scheme).plan(build_model(model), 512)
            out[model] = (
                planned_full.root_level_plan.cost,
                planned_two.root_level_plan.cost,
                evaluate(planned_full).total_time,
                evaluate(planned_two).total_time,
            )
        return out

    results = benchmark.pedantic(sweep_ablation, rounds=1, iterations=1,
                                 warmup_rounds=0)

    rows = []
    for model, (obj_full, obj_two, t_full, t_two) in results.items():
        # exact dominance on the search objective
        assert obj_full <= obj_two * (1 + 1e-9), model
        rows.append(
            [model, f"{obj_two / obj_full:.3f}x", f"{t_two / t_full:.3f}x"]
        )

    text = format_table(
        ["model", "objective gain", "simulated gain"],
        rows,
        title="Ablation A2: adding Type-III to the search space (vs {I, II})",
    )
    save_artifact(results_dir, "ablation_space.txt", text)


@pytest.mark.benchmark(group="ablations")
def test_type_iii_actually_selected(benchmark, results_dir):
    """The complete space is only meaningful if Type-III gets chosen."""
    array = heterogeneous_array()

    def count_type_iii():
        planned = Planner(array, AccParScheme()).plan(build_model("alexnet"), 512)
        total = 0
        for level in planned.level_plans():
            total += level.type_counts()[PartitionType.TYPE_III]
        return total

    picked = benchmark.pedantic(count_type_iii, rounds=1, iterations=1,
                                warmup_rounds=0)
    save_artifact(results_dir, "ablation_type_iii_usage.txt",
                  f"Type-III selections across all alexnet levels: {picked}")
    assert picked > 0
