"""Search-cost bench: the O(N) DP vs the O(3^N) brute force (Section 5.1).

Certifies optimality on chains where brute force is feasible and measures
the wall-time gap, plus the DP's linear scaling on long chains.
"""

import time

import pytest

from repro.core.brute_force import brute_force_chain
from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.stages import ShardedLayerStage
from repro.core.types import ShardedWorkload
from repro.experiments.reporting import format_table
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group

from conftest import save_artifact


def chain(n_layers, batch=64, width=512):
    stages = []
    for idx in range(n_layers):
        w = LayerWorkload(f"fc{idx}", batch, width, width, (1, 1), (1, 1),
                          (1, 1), False)
        stages.append(ShardedLayerStage(ShardedWorkload(w)))
    return stages


@pytest.fixture
def model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))


@pytest.mark.benchmark(group="search")
def test_dp_optimality_and_speed_vs_brute_force(benchmark, model, results_dir):
    stages = chain(9)

    dp = benchmark(lambda: search_stages(stages, model))

    t0 = time.perf_counter()
    bf = brute_force_chain(stages, model)
    bf_seconds = time.perf_counter() - t0

    assert dp.cost == pytest.approx(bf.cost, rel=1e-9)

    t0 = time.perf_counter()
    search_stages(stages, model)
    dp_seconds = time.perf_counter() - t0

    text = format_table(
        ["layers", "DP time", "brute-force time", "speedup", "same optimum"],
        [["9", f"{dp_seconds * 1e3:.2f} ms", f"{bf_seconds * 1e3:.2f} ms",
          f"{bf_seconds / max(dp_seconds, 1e-9):.1f}x", "yes"]],
        title="Search: Eq. 9 dynamic program vs exhaustive enumeration",
    )
    save_artifact(results_dir, "search_dp_vs_bruteforce.txt", text)


@pytest.mark.benchmark(group="search")
def test_dp_scales_linearly(benchmark, model, results_dir):
    """Doubling the chain roughly doubles DP time (O(N |T|^2))."""

    def run_long():
        return search_stages(chain(128), model)

    result = benchmark(run_long)
    assert len(result.assignments) == 128

    timings = []
    for n in (32, 64, 128):
        t0 = time.perf_counter()
        search_stages(chain(n), model)
        timings.append((n, time.perf_counter() - t0))

    rows = [[str(n), f"{t * 1e3:.2f} ms"] for n, t in timings]
    save_artifact(
        results_dir,
        "search_scaling.txt",
        format_table(["layers", "DP time"], rows, title="DP search scaling"),
    )
    # superlinear blowup would indicate the DP is not O(N)
    t32 = timings[0][1]
    t128 = timings[2][1]
    assert t128 < t32 * 16


@pytest.mark.benchmark(group="search")
def test_greedy_vs_dp_quality(benchmark, model, results_dir):
    """Quantify the DP's advantage over a myopic greedy with identical step
    costs: same optimum on easy chains, measurable gap on adversarial ones."""
    from repro.core.greedy import greedy_chain

    adversarial = []
    for dims, batch in [((4096, 4000, 8), 4), ((2048, 2000, 16), 4)]:
        stages = []
        for idx in range(len(dims) - 1):
            w = LayerWorkload(f"fc{idx}", batch, dims[idx], dims[idx + 1],
                              (1, 1), (1, 1), (1, 1), False)
            stages.append(ShardedLayerStage(ShardedWorkload(w)))
        adversarial.append((dims, stages))

    def run_all():
        out = {}
        for dims, stages in adversarial:
            dp = search_stages(stages, model)
            greedy = greedy_chain(stages, model)
            out[dims] = greedy.cost / dp.cost
        return out

    gaps = benchmark(run_all)

    rows = [[str(dims), f"{gap:.3f}x"] for dims, gap in gaps.items()]
    save_artifact(
        results_dir,
        "search_greedy_gap.txt",
        format_table(["chain widths", "greedy cost / DP cost"], rows,
                     title="Myopic greedy vs Eq. 9 DP (adversarial chains)"),
    )
    assert max(gaps.values()) > 1.2
