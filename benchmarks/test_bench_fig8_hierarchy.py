"""Figure 8: scalability with hierarchy level h = 2..9 on Vgg19.

Paper shape: OWT and HyPar speedups saturate as h grows, AccPar keeps
climbing — the value of the complete space and flexible ratios compounds
with finer-grained hierarchies.
"""

import pytest

from repro.experiments.figures import figure8_hierarchy_sweep

from repro.ioutil import atomic_write_text

from conftest import save_artifact


@pytest.mark.benchmark(group="figures")
def test_fig8_hierarchy_scalability(benchmark, results_dir):
    result = benchmark.pedantic(
        figure8_hierarchy_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    save_artifact(results_dir, "fig8_hierarchy.txt", result.rendered())

    from repro.experiments.svg import line_chart_svg

    atomic_write_text(
        results_dir / "fig8_hierarchy.svg",
        line_chart_svg(
            [float(h) for h in result.levels],
            result.speedups,
            "Figure 8: speedup vs hierarchy level (Vgg19)",
            x_label="hierarchy level h",
        ),
    )

    assert result.levels == list(range(2, 10))

    acc = result.speedups["accpar"]
    owt = result.speedups["owt"]
    hypar = result.speedups["hypar"]

    # AccPar dominates at every hierarchy level
    for idx in range(len(result.levels)):
        assert acc[idx] >= hypar[idx] - 1e-9
        assert acc[idx] >= owt[idx] - 1e-9

    # AccPar keeps improving from shallow to deep hierarchies
    assert acc[-1] > acc[0]

    # the baselines' relative growth saturates: their tail gain is smaller
    # than AccPar's
    acc_tail_gain = acc[-1] / acc[4]
    owt_tail_gain = owt[-1] / owt[4]
    hypar_tail_gain = hypar[-1] / hypar[4]
    assert acc_tail_gain >= owt_tail_gain - 1e-9
    assert acc_tail_gain >= hypar_tail_gain - 1e-9
