"""Numeric validation bench: execute the partition algebra exhaustively.

Runs two-device training for every 3-layer type combination at three
ratios (81 configurations) with real matrices, asserting bit-level
agreement with single-device training and exact Table 4 / Table 5
communication counts — the executable proof behind the analytic model the
other benches rely on.
"""

import itertools

import pytest

from repro.core.types import PartitionType
from repro.experiments.reporting import format_table
from repro.numeric import LayerPlanNumeric, MlpSpec, validate_partitioned_training

from conftest import save_artifact

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@pytest.mark.benchmark(group="numeric")
def test_exhaustive_numeric_validation(benchmark, results_dir):
    spec = MlpSpec([8, 8, 8, 8])

    def validate_all():
        results = []
        for combo in itertools.product((I, II, III), repeat=3):
            for ratio in (0.25, 0.5, 0.75):
                plan = [LayerPlanNumeric(t, ratio) for t in combo]
                report = validate_partitioned_training(spec, plan, batch=8)
                results.append((combo, ratio, report))
        return results

    results = benchmark.pedantic(validate_all, rounds=1, iterations=1,
                                 warmup_rounds=0)

    assert len(results) == 81
    worst_grad = 0.0
    for combo, ratio, report in results:
        assert report.numerically_exact, (combo, ratio)
        assert report.intra_matches_table4, (combo, ratio)
        assert report.inter_matches_table5, (combo, ratio)
        worst_grad = max(worst_grad, report.max_gradient_error)

    text = format_table(
        ["configurations", "numerically exact", "Table 4 counts",
         "Table 5 counts", "worst gradient error"],
        [["81 (27 type combos x 3 ratios)", "81/81", "81/81", "81/81",
          f"{worst_grad:.2e}"]],
        title="Exhaustive numeric validation of the partition algebra",
    )
    save_artifact(results_dir, "numeric_validation.txt", text)
