"""Table 6: FLOP counts of the three training multiplications.

Checks the FC closed forms — A(F_{l+1})(2D_i - 1), A(E_l)(2D_o - 1),
A(W)(2B - 1) — and the CONV extension of Section 4.3 where the reduction
length additionally carries the kernel window (forward/backward) or the
output feature map (gradient).
"""

import pytest

from repro.core.types import Phase, ShardedWorkload
from repro.experiments.reporting import format_table
from repro.graph.layers import LayerWorkload

from conftest import save_artifact

B, DI, DO = 512, 4096, 1024
FC = ShardedWorkload(LayerWorkload("fc", B, DI, DO, (1, 1), (1, 1), (1, 1), False))
CONV = ShardedWorkload(
    LayerWorkload("cv", 32, 64, 128, (28, 28), (28, 28), (3, 3), True)
)


@pytest.mark.benchmark(group="tables")
def test_table6_flop_counts(benchmark, results_dir):
    def compute_all():
        return {
            (sw.name, phase): sw.flops_phase(phase)
            for sw in (FC, CONV)
            for phase in Phase
        }

    flops = benchmark(compute_all)

    # FC closed forms, exactly Table 6
    assert flops[("fc", Phase.FORWARD)] == (B * DO) * (2 * DI - 1)
    assert flops[("fc", Phase.BACKWARD)] == (B * DI) * (2 * DO - 1)
    assert flops[("fc", Phase.GRADIENT)] == (DI * DO) * (2 * B - 1)

    # CONV extension: reduction lengths gain the kernel / output-map factors
    k = 9  # 3x3
    out_map = 28 * 28
    assert flops[("cv", Phase.FORWARD)] == pytest.approx(
        CONV.a_output_fm() * (2 * 64 * k - 1)
    )
    assert flops[("cv", Phase.BACKWARD)] == pytest.approx(
        CONV.a_input_fm() * (2 * 128 * k - 1)
    )
    assert flops[("cv", Phase.GRADIENT)] == pytest.approx(
        CONV.a_weight() * (2 * 32 * out_map - 1)
    )

    rows = [
        ["F_{l+1} = F_l x W_l", "A(F_{l+1})(2 D_i K - 1)",
         f"{flops[('fc', Phase.FORWARD)] / 1e9:.2f} G",
         f"{flops[('cv', Phase.FORWARD)] / 1e9:.2f} G"],
        ["E_l = E_{l+1} x W^T", "A(E_l)(2 D_o K - 1)",
         f"{flops[('fc', Phase.BACKWARD)] / 1e9:.2f} G",
         f"{flops[('cv', Phase.BACKWARD)] / 1e9:.2f} G"],
        ["dW = F^T x E_{l+1}", "A(W)(2 B HoWo - 1)",
         f"{flops[('fc', Phase.GRADIENT)] / 1e9:.2f} G",
         f"{flops[('cv', Phase.GRADIENT)] / 1e9:.2f} G"],
    ]
    text = format_table(
        ["multiplication", "# FLOP", "FC example", "CONV example"],
        rows,
        title="Table 6: floating point operations of the three multiplications",
    )
    save_artifact(results_dir, "table6_flops.txt", text)
