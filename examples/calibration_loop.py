"""Close the loop: run -> measure -> calibrate -> predict.

Datasheet rates (Table 7) overstate achievable throughput, and a whole
array behaves like one black box with *effective* aggregate rates.  This
example collects measured probes from a few jobs on the "real" array, fits
array-level effective compute and network rates by least squares, and then
predicts the iteration time of a workload it has never seen — the
capacity-planning workflow a production deployment of AccPar would use.

Run:
    python examples/calibration_loop.py
"""

from repro import AcceleratorSpec, Planner, build_model, evaluate, get_scheme, make_group
from repro.experiments.calibration import calibrate, probe_from_run

# what the hardware actually delivers per board (the planner never sees this
# directly — only measured end-to-end times)
REALITY = AcceleratorSpec(
    name="board",
    flops=140e12,
    memory_bytes=64 * 2**30,
    memory_bandwidth=2400e9,
    network_bandwidth=1.1e9,
)
ARRAY = make_group(REALITY, 8)


def run_job(model: str, scheme: str, batch: int):
    """'Run' a job on the real array; return (probe, measured seconds)."""
    planned = Planner(ARRAY, get_scheme(scheme)).plan(build_model(model), batch)
    report = evaluate(planned)
    return probe_from_run(planned, report), report.total_time


def main() -> None:
    # 1. measured probes from diverse past jobs
    history = [
        run_job("lenet", "dp", 256),
        run_job("alexnet", "dp", 256),
        run_job("alexnet", "accpar", 256),
        run_job("vgg11", "accpar", 256),
        run_job("resnet18", "hypar", 256),
    ]
    probes = [p for p, _ in history]

    # 2. fit array-level effective rates:  T = flops/c_eff + bytes/b_eff
    result = calibrate(probes)
    print(f"calibrated from {result.n_probes} measured jobs:")
    print(f"  effective array compute : {result.effective_flops / 1e12:8.1f} TFLOPS")
    print(f"  effective array network : "
          f"{result.effective_network_bandwidth / 1e9:8.2f} GB/s")
    print(f"  fit residual            : {result.residual_rms * 1e3:.4f} ms RMS")

    # 3. predict a workload the fit has never seen
    unseen_probe, actual = run_job("vgg19", "accpar", 256)
    predicted = (
        unseen_probe.flops / result.effective_flops
        + unseen_probe.network_bytes / result.effective_network_bandwidth
    )
    error = abs(predicted - actual) / actual * 100
    print("\nheld-out prediction (vgg19 / accpar):")
    print(f"  predicted: {predicted * 1e3:8.2f} ms/iter")
    print(f"  measured : {actual * 1e3:8.2f} ms/iter  ({error:.1f}% error)")

    # naive datasheet prediction for contrast: peak rates, zero comm model
    datasheet = unseen_probe.flops / ARRAY.flops
    print(f"  datasheet (peak FLOPS, free network): {datasheet * 1e3:8.2f} ms/iter "
          f"({abs(datasheet - actual) / actual * 100:.0f}% error)")


if __name__ == "__main__":
    main()
