"""Multi-path partitioning on ResNet-50 (Section 5.2).

ResNet's residual blocks are fork/join regions: the main path carries the
convolutions, the skip path is an identity (or a 1x1 projection at stage
transitions).  AccPar plans each path between the enclosing partition
states; this example prints the chosen type per block and the simulated
gain over HyPar, which must linearize the graph.

Run:
    python examples/resnet_multipath.py
"""

from collections import Counter

from repro import (
    AccParPlanner,
    Planner,
    build_model,
    evaluate,
    get_scheme,
    heterogeneous_array,
)


def main() -> None:
    array = heterogeneous_array(32, 32)
    network = build_model("resnet50")
    batch = 256

    planned = AccParPlanner(array).plan(network, batch)
    root = planned.root_level_plan

    print(f"{network.name} on {array}: root-level plan\n")

    # group the per-layer choices by residual block (prefix s<stage>b<block>)
    blocks = Counter()
    for name, lp in root.layer_assignments().items():
        prefix = name.split("_")[0] if "_" in name else name
        blocks[(prefix, lp.ptype)] += 1

    current = None
    for (prefix, ptype), count in sorted(blocks.items(),
                                         key=lambda kv: kv[0][0]):
        if prefix != current:
            print(f"  {prefix}:", end="")
            current = prefix
        print(f"  {count}x {ptype}", end="")
        print()

    # join alignments chosen for the fork/join boundary tensors
    joins = root.joins()
    print(f"\n{len(joins)} fork/join boundaries aligned "
          f"({Counter(j.state for j in joins)})")

    # compare against HyPar's linearized planning
    accpar_time = evaluate(planned).total_time
    hypar_time = evaluate(
        Planner(array, get_scheme("hypar")).plan(network, batch)
    ).total_time
    print(f"\nsimulated iteration: AccPar {accpar_time * 1e3:.2f} ms, "
          f"HyPar {hypar_time * 1e3:.2f} ms "
          f"-> {hypar_time / accpar_time:.2f}x from multi-path-aware, "
          "heterogeneity-aware planning")


if __name__ == "__main__":
    main()
