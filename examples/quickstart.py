"""Quickstart: plan VGG-19 training on a heterogeneous TPU array with AccPar.

Run:
    python examples/quickstart.py
"""

from repro import (
    AccParPlanner,
    build_model,
    evaluate,
    get_scheme,
    heterogeneous_array,
    Planner,
)


def main() -> None:
    # the paper's Section 6.2 array: 128 TPU-v2 boards + 128 TPU-v3 boards
    array = heterogeneous_array()
    network = build_model("vgg19")
    batch = 512

    # 1. plan with AccPar: complete partition space, compute+comm cost model,
    #    Eq. 10 flexible ratios, recursive hierarchical bisection
    planner = AccParPlanner(array)
    planned = planner.plan(network, batch)

    print(f"planned {network.name} over {array} "
          f"({planned.hierarchy_levels()} hierarchy levels)\n")

    # 2. inspect the root-level decisions (the v2|v3 split)
    print("root level (TPU-v3 group vs TPU-v2 group):")
    for name, lp in planned.root_level_plan.layer_assignments().items():
        print(f"  {name:<6} {lp.ptype!s:<9} alpha={lp.ratio:.3f}")

    # 3. simulate one training iteration and compare against data parallelism
    report = evaluate(planned)
    dp_planned = Planner(array, get_scheme("dp")).plan(network, batch)
    dp_report = evaluate(dp_planned)

    print(f"\nsimulated iteration time: {report.total_time * 1e3:.2f} ms "
          f"({report.throughput:.0f} samples/s)")
    print(f"data parallelism:         {dp_report.total_time * 1e3:.2f} ms")
    print(f"speedup over DP:          "
          f"{dp_report.total_time / report.total_time:.2f}x")
    print(f"fits HBM: {report.fits_memory} "
          f"(worst leaf utilization "
          f"{report.memory_worst.utilization * 100:.1f}%)")


if __name__ == "__main__":
    main()
