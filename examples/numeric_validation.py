"""Prove the partition algebra numerically (Section 3, executed).

Runs real two-device training — FC and CONV — for every partitioning type,
compares gradients bit-for-bit against single-device training, checks the
communicated element counts against Tables 4/5, and finishes with a full
multi-step momentum training run that tracks the reference exactly.

Run:
    python examples/numeric_validation.py
"""

import itertools

from repro.core.types import PartitionType
from repro.numeric import (
    CnnSpec,
    ConvLayerPlan,
    ConvLayerSpec,
    LayerPlanNumeric,
    MlpSpec,
    validate_conv_partitioned_training,
    validate_partitioned_training,
)
from repro.training import compare_runs, synthetic_task, train_partitioned, train_reference

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def main() -> None:
    # 1. FC: all 27 three-layer type combinations
    spec = MlpSpec([8, 8, 8, 8])
    print("FC partition algebra (27 type combinations, alpha=0.25):")
    exact = 0
    for combo in itertools.product((I, II, III), repeat=3):
        plan = [LayerPlanNumeric(t, 0.25) for t in combo]
        report = validate_partitioned_training(spec, plan, batch=8)
        assert report.numerically_exact
        assert report.intra_matches_table4 and report.inter_matches_table5
        exact += 1
    print(f"  {exact}/27 exact, Table 4/5 element counts all match\n")

    # 2. CONV: the Section 3.3 extension
    cnn = CnnSpec(4, 8, 8, [ConvLayerSpec(4, 6, kernel=3, padding=1),
                            ConvLayerSpec(6, 4, kernel=3, stride=2, padding=1)])
    print("CONV partition algebra (9 type pairs):")
    for t0, t1 in itertools.product((I, II, III), repeat=2):
        report = validate_conv_partitioned_training(
            cnn, [ConvLayerPlan(t0, 0.5), ConvLayerPlan(t1, 0.5)], batch=4
        )
        status = "exact" if report.numerically_exact else "FAILED"
        print(f"  {t0!s:>9} -> {t1!s:<9} {status}  "
              f"(max grad err {report.max_gradient_error:.1e}, "
              f"{report.comm_total_elements} elements moved)")

    # 3. a full training run with momentum, partitioned vs reference
    print("\nmulti-step training (momentum, mixed II/III/I plan):")
    mlp = MlpSpec([8, 12, 8, 4])
    x, target = synthetic_task(mlp, batch=16)
    plan = [LayerPlanNumeric(II, 0.5), LayerPlanNumeric(III, 0.5),
            LayerPlanNumeric(I, 0.5)]
    ref = train_reference(mlp, x, target, steps=30, optimizer="momentum")
    par = train_partitioned(mlp, plan, x, target, steps=30, optimizer="momentum")
    print(f"  loss: {ref.losses[0]:.4f} -> {ref.final_loss:.4f} (reference)")
    print(f"  loss: {par.losses[0]:.4f} -> {par.final_loss:.4f} (partitioned)")
    print(f"  max final weight divergence: {compare_runs(ref, par):.2e}")


if __name__ == "__main__":
    main()
