"""Planning across a custom heterogeneous cluster.

Scenario from the paper's motivation (Section 2.3): a datacenter keeps its
older accelerator generation in service next to a new one.  Here we mix
three generations with different compute densities and link bandwidths and
watch how AccPar's Eq. 10 ratios shift work toward the faster groups, while
the equal-ratio baselines idle them.

Run:
    python examples/heterogeneous_cluster.py
"""

from repro import (
    AcceleratorSpec,
    AccParScheme,
    Planner,
    build_model,
    evaluate,
    get_scheme,
    make_group,
)
from repro.hardware import merge_groups

# a fictional three-generation fleet (rates in FLOP/s and bytes/s)
GEN_A = AcceleratorSpec("gen-a", flops=100e12, memory_bytes=32 * 2**30,
                        memory_bandwidth=1200e9, network_bandwidth=0.5e9)
GEN_B = AcceleratorSpec("gen-b", flops=200e12, memory_bytes=64 * 2**30,
                        memory_bandwidth=2400e9, network_bandwidth=1e9)
GEN_C = AcceleratorSpec("gen-c", flops=400e12, memory_bytes=128 * 2**30,
                        memory_bandwidth=4800e9, network_bandwidth=2e9)


def main() -> None:
    cluster = merge_groups(
        make_group(GEN_A, 8), make_group(GEN_B, 8), make_group(GEN_C, 16)
    )
    network = build_model("resnet50")
    batch = 256

    print(f"cluster: {cluster}")
    print(f"model:   {network.name}, batch {batch}\n")

    times = {}
    for scheme_name in ("dp", "owt", "hypar", "accpar"):
        planned = Planner(cluster, get_scheme(scheme_name)).plan(network, batch)
        report = evaluate(planned)
        times[scheme_name] = report.total_time
        print(f"{scheme_name:>7}: {report.total_time * 1e3:8.2f} ms/iter   "
              f"speedup vs DP: {times['dp'] / report.total_time:5.2f}x")

    # inspect the ratios AccPar chose at the top split (gen-c vs the rest)
    planned = Planner(cluster, AccParScheme()).plan(network, batch)
    root = planned.root_level_plan
    ratios = sorted(
        {round(lp.ratio, 3) for lp in root.layer_assignments().values()}
    )
    left = planned.tree.left.group
    right = planned.tree.right.group
    print(f"\nroot split: {left}  vs  {right}")
    print(f"alpha values chosen across layers: {ratios}")
    print("(compute-proportional share of the left group would be "
          f"{left.flops / (left.flops + right.flops):.3f})")


if __name__ == "__main__":
    main()
