"""Hierarchy-level scalability study (the Figure 8 experiment, interactive).

Sweeps the pairing-tree depth h: an h-level hierarchy shards tensors into
2^h pieces across a 2^h-board array (half TPU-v2, half TPU-v3) and shows
where each scheme saturates.

Run:
    python examples/hierarchy_sweep.py [model]
"""

import sys

from repro import SCHEME_ORDER
from repro.experiments import figure8_hierarchy_sweep, format_bar_chart


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "vgg19"
    levels = range(2, 9)

    print(f"hierarchy sweep on {model} (heterogeneous v2+v3 arrays)\n")
    result = figure8_hierarchy_sweep(model=model, levels=tuple(levels))
    print(result.rendered())

    print("\nfinal-level comparison:")
    final = {s: result.speedups[s][-1] for s in SCHEME_ORDER}
    print(format_bar_chart(final, width=40))

    acc = result.speedups["accpar"]
    hypar = result.speedups["hypar"]
    print(
        f"\nAccPar grows {acc[-1] / acc[0]:.2f}x from h={levels[0]} to "
        f"h={levels[-1]}; HyPar grows {hypar[-1] / hypar[0]:.2f}x"
    )


if __name__ == "__main__":
    main()
