"""Straggler recovery: heterogeneity-aware planning as fault tolerance.

A board in a homogeneous array throttles to 25% compute (thermal event,
ECC degradation).  The topology is unchanged, so every scheme may re-plan —
but only AccPar's flexible ratios can actually respond: the equal-ratio
schemes re-derive the same plan and eat the slowdown.

Run:
    python examples/straggler_recovery.py
"""

from repro import homogeneous_array
from repro.experiments.faults import straggler_experiment


def main() -> None:
    array = homogeneous_array(16)
    print("one of 16 TPU-v3 boards throttled to 25% compute (vgg19, batch 512)\n")
    print(f"{'scheme':>8}  {'healthy':>10}  {'stale plan':>10}  "
          f"{'re-planned':>10}  {'recovery':>8}")
    for scheme in ("dp", "owt", "hypar", "accpar"):
        o = straggler_experiment("vgg19", array, scheme=scheme,
                                 n_degraded=1, compute_factor=0.25)
        print(f"{scheme:>8}  {o.healthy_time * 1e3:8.2f}ms  "
              f"{o.stale_plan_time * 1e3:8.2f}ms  "
              f"{o.replanned_time * 1e3:8.2f}ms  "
              f"{o.recovery_gain:7.3f}x")

    print("\nAccPar shifts each layer's ratio away from the slow board;")
    print("equal-ratio schemes have nothing in their space that can react.")


if __name__ == "__main__":
    main()
