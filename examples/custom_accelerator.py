"""Bring your own accelerator and your own model.

Shows the extension points a downstream user needs: defining an
AcceleratorSpec, registering a custom network in the model zoo, validating
it, and checking that the plan fits the accelerator's memory.

Run:
    python examples/custom_accelerator.py
"""

from repro import (
    AcceleratorSpec,
    AccParPlanner,
    BatchNorm,
    Conv2d,
    Flatten,
    Input,
    Linear,
    Network,
    Pool2d,
    ReLU,
    build_model,
    evaluate,
    make_group,
    register_model,
    validate_network,
)


def build_edge_cnn() -> Network:
    """A small VGG-style CNN for 64x64 inputs."""
    net = Network("edge-cnn", Input("input", channels=3, height=64, width=64))
    channels = [32, 64, 128]
    in_ch = 3
    for idx, out_ch in enumerate(channels, start=1):
        net.add(Conv2d(f"cv{idx}a", in_ch, out_ch, kernel=3, padding=1))
        net.add(BatchNorm(f"bn{idx}a"))
        net.add(ReLU(f"relu{idx}a"))
        net.add(Conv2d(f"cv{idx}b", out_ch, out_ch, kernel=3, padding=1))
        net.add(BatchNorm(f"bn{idx}b"))
        net.add(ReLU(f"relu{idx}b"))
        net.add(Pool2d(f"pool{idx}", kernel=2, stride=2))
        in_ch = out_ch
    net.add(Flatten("flatten"))
    net.add(Linear("fc1", 128 * 8 * 8, 512))
    net.add(ReLU("relu_fc"))
    net.add(Linear("fc2", 512, 100))
    return net


def main() -> None:
    # an inference-grade edge accelerator pressed into training duty:
    # modest compute, tiny memory, slow links
    edge_tpu = AcceleratorSpec(
        name="edge-npu",
        flops=8e12,
        memory_bytes=4 * 2**30,
        memory_bandwidth=100e9,
        network_bandwidth=0.125e9,  # 1 Gb/s
    )
    array = make_group(edge_tpu, 16)

    register_model("edge-cnn", build_edge_cnn, overwrite=True)
    network = build_model("edge-cnn")

    warnings = validate_network(network)
    print(f"validated {network.name}: "
          f"{'ok' if not warnings else warnings}")
    print(network.describe(batch=4))

    planned = AccParPlanner(array).plan(network, batch=128)
    report = evaluate(planned)

    print(f"\n{array}: {report.total_time * 1e3:.2f} ms/iteration "
          f"({report.throughput:.0f} samples/s)")
    mem = report.memory_worst
    print(f"worst leaf memory: {mem.total_bytes / 2**20:.1f} MiB of "
          f"{mem.capacity_bytes / 2**30:.0f} GiB "
          f"({mem.utilization * 100:.2f}%) -> fits: {mem.fits}")

    print("\nper-level communication:")
    for lv in report.levels:
        print(f"  level {lv.level}: {lv.comm_time * 1e6:.1f} us "
              f"({lv.net_bytes_left / 1e6:.2f} MB per side)")


if __name__ == "__main__":
    main()
